"""Reliable FIFO queues with lease/ack semantics.

The hierarchical queueing architecture (paper section 4.1, figure 3) needs
queues that "reliably store and track tasks": a forwarder pops tasks only
while its endpoint is connected, and returns outstanding tasks to the queue
when the endpoint disconnects, giving *at-least-once* delivery.

:class:`ReliableQueue` implements that contract directly:

* ``put`` enqueues an item.
* ``lease`` dequeues the oldest item under a revocable lease.
* ``ack`` completes the lease; the item is gone for good.
* ``nack`` (or lease expiry via ``requeue_expired``) returns the item to
  the *front* of the queue so redelivery preserves age order.

:class:`FairReliableQueue` keeps the same contract but partitions the
ready backlog into per-tenant *lanes* and dequeues with deficit round
robin, so one aggressive tenant cannot starve the others sharing an
endpoint queue.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

# Ready-backlog entry: (item, enqueued_at, prior deliveries, lane).
_Entry = tuple[Any, float, int, str]


@dataclass
class Lease:
    """An in-flight item handed to a consumer but not yet acknowledged."""

    lease_id: int
    item: Any
    leased_at: float
    deadline: float | None
    enqueued_at: float = 0.0
    deliveries: int = 1
    lane: str = ""


class ReliableQueue:
    """FIFO queue with at-least-once delivery.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"tasks:<endpoint-id>"``).
    clock:
        Injectable time source; defaults to :func:`time.monotonic`.
    default_lease_timeout:
        Visibility timeout applied to leases when the consumer does not
        specify one.  ``None`` means leases never auto-expire (the live
        forwarder explicitly nacks on disconnect instead).
    """

    # All queue state moves together under the condition's lock — the
    # conservation invariant (enqueued = acked + in_flight + ready) only
    # holds if no counter is ever torn from the containers.  Enforced by
    # `repro lint` (guarded-by).
    _GUARDED = {
        "_items": "_lock",
        "_leases": "_lock",
        "total_enqueued": "_lock",
        "total_acked": "_lock",
        "total_redelivered": "_lock",
        "_high_watermark": "_lock",
    }

    def __init__(
        self,
        name: str = "queue",
        clock: Callable[[], float] | None = None,
        default_lease_timeout: float | None = None,
    ):
        self.name = name
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Condition()
        self._items: deque[_Entry] = deque()
        self._leases: dict[int, Lease] = {}
        self._lease_ids = itertools.count(1)
        self._default_timeout = default_lease_timeout
        self._closed = False
        # counters for metrics
        self.total_enqueued = 0
        self.total_acked = 0
        self.total_redelivered = 0
        # Deepest the ready backlog has ever been: with credit-based
        # backpressure shedding load into this queue, the watermark is
        # the observable record of how far producers outran consumers.
        self._high_watermark = 0
        # Observation hook: when set, invoked as ``probe(event, fields)``
        # after every mutation, carrying a conservation snapshot.  Handlers
        # run under the queue lock and must not call back into the queue.
        self.probe: Callable[[str, dict[str, Any]], None] | None = None
        # Wakeup hook: fired (outside the queue lock) whenever items
        # become available — put/nack/expiry.  Event-driven consumers
        # point this at Wakeup.set so they block instead of sleep-polling.
        self.wakeup: Callable[[], None] | None = None

    # -- ready-backlog storage ------------------------------------------------
    # All access to the ready backlog goes through these four hooks so a
    # subclass can change the *dequeue discipline* (e.g. DRR fairness)
    # without touching the lease/ack conservation machinery.

    def _ready_push(self, entry: _Entry, front: bool = False) -> None:  # guarded-by: self._lock
        if front:
            self._items.appendleft(entry)
        else:
            self._items.append(entry)

    def _ready_pop(self) -> _Entry:  # guarded-by: self._lock
        return self._items.popleft()

    def _ready_len(self) -> int:  # guarded-by: self._lock
        return len(self._items)

    def _ready_entries(self) -> list[_Entry]:  # guarded-by: self._lock
        return list(self._items)

    def _fire_wakeup(self) -> None:
        """Notify the event-driven consumer; never called under the lock."""
        wakeup = self.wakeup
        if wakeup is not None:
            wakeup()

    def _note_depth(self) -> None:  # guarded-by: self._lock
        """Track the ready-backlog high watermark (caller holds lock)."""
        depth = self._ready_len()
        if depth > self._high_watermark:
            self._high_watermark = depth

    # -- observation ---------------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:  # guarded-by: self._lock
        """Emit ``event`` with a conservation snapshot (caller holds lock)."""
        probe = self.probe
        if probe is None:
            return
        probe(
            event,
            {
                "queue": self.name,
                "enqueued": self.total_enqueued,
                "acked": self.total_acked,
                "in_flight": len(self._leases),
                "ready": self._ready_len(),
                **fields,
            },
        )

    def conservation_delta(self) -> int:
        """``total_enqueued - total_acked - in_flight - ready``.

        Every ``put`` adds one item; ``lease`` moves it to the lease table;
        ``ack`` retires it; ``nack``/expiry moves it back.  The delta is
        therefore zero at all times — the queue-conservation invariant.
        """
        with self._lock:
            return (
                self.total_enqueued
                - self.total_acked
                - len(self._leases)
                - self._ready_len()
            )

    def snapshot_items(self) -> tuple[list[Any], list[Any]]:
        """(waiting items, leased items) — chaos accounting introspection."""
        with self._lock:
            return (
                [item for (item, _enq, _d, _lane) in self._ready_entries()],
                [lease.item for lease in self._leases.values()],
            )

    # -- producer side -------------------------------------------------------
    def put(self, item: Any, lane: str = "") -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"queue {self.name} is closed")
            self._ready_push((item, self._clock(), 0, lane))
            self.total_enqueued += 1
            self._note_depth()
            self._emit("queue.put")
            self._lock.notify()
        self._fire_wakeup()

    def put_many(self, items: Iterable[Any], lane: str = "") -> int:
        """Enqueue a batch; returns the number enqueued."""
        count = 0
        with self._lock:
            if self._closed:
                raise RuntimeError(f"queue {self.name} is closed")
            now = self._clock()
            for item in items:
                self._ready_push((item, now, 0, lane))
                count += 1
            self.total_enqueued += count
            self._note_depth()
            if count:
                self._emit("queue.put_many", count=count)
                self._lock.notify(count)
        if count:
            self._fire_wakeup()
        return count

    # -- consumer side ---------------------------------------------------------
    def _lease_entry(self, lease_timeout: float | None) -> Lease:  # guarded-by: self._lock
        """Pop one ready entry into the lease table (caller holds lock)."""
        item, enq_at, deliveries, lane = self._ready_pop()
        now = self._clock()
        effective = lease_timeout if lease_timeout is not None else self._default_timeout
        lease = Lease(
            lease_id=next(self._lease_ids),
            item=item,
            leased_at=now,
            deadline=(now + effective) if effective is not None else None,
            enqueued_at=enq_at,
            deliveries=deliveries + 1,
            lane=lane,
        )
        self._leases[lease.lease_id] = lease
        if deliveries:
            self.total_redelivered += 1
        return lease

    def lease(
        self,
        timeout: float | None = 0.0,
        lease_timeout: float | None = None,
    ) -> Lease | None:
        """Dequeue the oldest item under a lease.

        Parameters
        ----------
        timeout:
            How long to block waiting for an item. ``0`` polls; ``None``
            blocks indefinitely.
        lease_timeout:
            Overrides the queue's default visibility timeout.

        Returns
        -------
        The :class:`Lease`, or ``None`` if no item arrived in time.
        """
        with self._lock:
            if not self._wait_for_item(timeout):
                return None
            lease = self._lease_entry(lease_timeout)
            self._emit("queue.lease", deliveries=lease.deliveries)
            return lease

    def lease_many(self, max_items: int, lease_timeout: float | None = None) -> list[Lease]:
        """Non-blocking bulk lease of up to ``max_items`` (executor batching)."""
        leases: list[Lease] = []
        with self._lock:
            for _ in range(max_items):
                if not self._ready_len():
                    break
                leases.append(self._lease_entry(lease_timeout))
            if leases:
                self._emit("queue.lease_many", count=len(leases))
        return leases

    def ack(self, lease_id: int) -> bool:
        """Complete a lease; the item will never be redelivered."""
        with self._lock:
            if self._leases.pop(lease_id, None) is None:
                self._emit("queue.ack_rejected", lease_id=lease_id)
                return False
            self.total_acked += 1
            self._emit("queue.ack")
            return True

    def nack(self, lease_id: int) -> bool:
        """Return a leased item to the front of the queue for redelivery."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                self._emit("queue.nack_rejected", lease_id=lease_id)
                return False
            self._ready_push(
                (lease.item, lease.enqueued_at, lease.deliveries, lease.lane), front=True
            )
            self._note_depth()
            self._emit("queue.nack")
            self._lock.notify()
        self._fire_wakeup()
        return True

    def nack_all(self) -> int:
        """Requeue every outstanding lease (endpoint-disconnect path).

        Items return in age order: oldest ends up at the front.
        """
        with self._lock:
            leases = sorted(self._leases.values(), key=lambda l: l.enqueued_at, reverse=True)
            for lease in leases:
                self._ready_push(
                    (lease.item, lease.enqueued_at, lease.deliveries, lease.lane),
                    front=True,
                )
            count = len(leases)
            self._leases.clear()
            self._note_depth()
            if count:
                self._emit("queue.nack_all", count=count)
                self._lock.notify(count)
        if count:
            self._fire_wakeup()
        return count

    def requeue_expired(self) -> int:
        """Requeue every lease past its visibility deadline."""
        with self._lock:
            now = self._clock()
            expired = [
                l for l in self._leases.values() if l.deadline is not None and l.deadline <= now
            ]
            for lease in sorted(expired, key=lambda l: l.enqueued_at, reverse=True):
                del self._leases[lease.lease_id]
                self._ready_push(
                    (lease.item, lease.enqueued_at, lease.deliveries, lease.lane),
                    front=True,
                )
            self._note_depth()
            if expired:
                self._emit("queue.requeue_expired", count=len(expired))
                self._lock.notify(len(expired))
        if expired:
            self._fire_wakeup()
        return len(expired)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -- introspection -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._ready_len()

    @property
    def depth(self) -> int:
        """Ready (not-yet-leased) backlog depth."""
        with self._lock:
            return self._ready_len()

    @property
    def high_watermark(self) -> int:
        """Deepest the ready backlog has ever been."""
        with self._lock:
            return self._high_watermark

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._leases)

    def peek_ages(self) -> list[float]:
        """Queue-delay of every waiting item (diagnostics)."""
        with self._lock:
            now = self._clock()
            return [now - enq for (_, enq, _, _) in self._ready_entries()]

    # -- internals ---------------------------------------------------------------
    def _wait_for_item(self, timeout: float | None) -> bool:  # guarded-by: self._lock
        """Wait until an item is available; caller holds the lock."""
        if self._ready_len():
            return True
        if timeout == 0.0:
            return False
        deadline = None if timeout is None else self._clock() + timeout
        while not self._ready_len():
            if self._closed:
                return False
            remaining = None if deadline is None else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                return False
            self._lock.wait(remaining)
        return True


class FairReliableQueue(ReliableQueue):
    """Reliable queue with deficit-round-robin fair dequeue across lanes.

    Producers tag each item with a *lane* (the tenant id); the consumer
    side is unchanged — ``lease``/``lease_many`` transparently pick the
    next item under DRR, so a tenant pushing 10× the traffic still only
    gets its weighted share of dispatch slots while other lanes are
    backlogged.  Within a lane, FIFO age order (and front-of-lane
    redelivery on nack) is preserved, so the at-least-once conservation
    machinery of the base class applies untouched.

    Weights come from ``weight_for(lane)``; each round a backlogged lane
    earns ``quantum * weight`` deficit and spends 1 per item served.
    Empty lanes are retired immediately so idle tenants accumulate no
    credit (standard DRR, Shreedhar & Varghese).
    """

    # The DRR lane state is only touched from the base class's locked
    # push/lease/ack hooks, whose callers (producer and consumer
    # threads) the role graph attributes to the base class — it sees a
    # single role here, but the inherited lock is load-bearing.
    _GUARDED = {
        **ReliableQueue._GUARDED,
        "_lanes": "_lock",  # lint: ignore[threadroles]
        "_active": "_lock",  # lint: ignore[threadroles]
        "_deficit": "_lock",  # lint: ignore[threadroles]
        "_ready_count": "_lock",  # lint: ignore[threadroles]
    }

    #: Deficit cost of serving one item.
    _COST = 1.0

    def __init__(
        self,
        name: str = "queue",
        clock: Callable[[], float] | None = None,
        default_lease_timeout: float | None = None,
        quantum: float = 1.0,
        weight_for: Callable[[str], float] | None = None,
    ):
        super().__init__(name=name, clock=clock, default_lease_timeout=default_lease_timeout)
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self._quantum = quantum
        self._weight_for = weight_for or (lambda lane: 1.0)
        self._lanes: dict[str, deque[_Entry]] = {}
        self._active: deque[str] = deque()  # round-robin order of backlogged lanes
        self._deficit: dict[str, float] = {}
        self._ready_count = 0

    def _ready_push(self, entry: _Entry, front: bool = False) -> None:  # guarded-by: self._lock
        lane = entry[3]
        bucket = self._lanes.get(lane)
        if bucket is None:
            bucket = self._lanes[lane] = deque()
            self._deficit[lane] = 0.0
            # A redelivered item reactivates its lane at the head of the
            # round so age order degrades as little as possible.
            if front:
                self._active.appendleft(lane)
            else:
                self._active.append(lane)
        if front:
            bucket.appendleft(entry)
        else:
            bucket.append(entry)
        self._ready_count += 1

    def _ready_pop(self) -> _Entry:  # guarded-by: self._lock
        if not self._ready_count:
            raise IndexError("pop from an empty queue")
        while True:
            lane = self._active[0]
            bucket = self._lanes[lane]
            weight = max(self._weight_for(lane), 1e-9)
            if self._deficit[lane] < self._COST:
                # Lane hasn't earned a slot yet: top up and move on.  With
                # at least one backlogged lane, every full rotation adds
                # quantum*weight to each, so the loop terminates.
                self._deficit[lane] += self._quantum * weight
                self._active.rotate(-1)
                continue
            self._deficit[lane] -= self._COST
            entry = bucket.popleft()
            self._ready_count -= 1
            if not bucket:
                # Retire the drained lane: DRR forfeits leftover deficit
                # so idle tenants cannot bank credit for a later burst.
                self._active.popleft()
                del self._lanes[lane]
                del self._deficit[lane]
            return entry

    def _ready_len(self) -> int:  # guarded-by: self._lock
        return self._ready_count

    def _ready_entries(self) -> list[_Entry]:  # guarded-by: self._lock
        entries: list[_Entry] = []
        for lane in self._active:
            entries.extend(self._lanes[lane])
        return entries

    def lane_depths(self) -> dict[str, int]:
        """Ready backlog per lane (fairness diagnostics)."""
        with self._lock:
            return {lane: len(bucket) for lane, bucket in self._lanes.items()}
