"""Reliable FIFO queues with lease/ack semantics.

The hierarchical queueing architecture (paper section 4.1, figure 3) needs
queues that "reliably store and track tasks": a forwarder pops tasks only
while its endpoint is connected, and returns outstanding tasks to the queue
when the endpoint disconnects, giving *at-least-once* delivery.

:class:`ReliableQueue` implements that contract directly:

* ``put`` enqueues an item.
* ``lease`` dequeues the oldest item under a revocable lease.
* ``ack`` completes the lease; the item is gone for good.
* ``nack`` (or lease expiry via ``requeue_expired``) returns the item to
  the *front* of the queue so redelivery preserves age order.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable


@dataclass
class Lease:
    """An in-flight item handed to a consumer but not yet acknowledged."""

    lease_id: int
    item: Any
    leased_at: float
    deadline: float | None
    enqueued_at: float = 0.0
    deliveries: int = 1


class ReliableQueue:
    """FIFO queue with at-least-once delivery.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"tasks:<endpoint-id>"``).
    clock:
        Injectable time source; defaults to :func:`time.monotonic`.
    default_lease_timeout:
        Visibility timeout applied to leases when the consumer does not
        specify one.  ``None`` means leases never auto-expire (the live
        forwarder explicitly nacks on disconnect instead).
    """

    # All queue state moves together under the condition's lock — the
    # conservation invariant (enqueued = acked + in_flight + ready) only
    # holds if no counter is ever torn from the containers.  Enforced by
    # `repro lint` (guarded-by).
    _GUARDED = {
        "_items": "_lock",
        "_leases": "_lock",
        "total_enqueued": "_lock",
        "total_acked": "_lock",
        "total_redelivered": "_lock",
        "_high_watermark": "_lock",
    }

    def __init__(
        self,
        name: str = "queue",
        clock: Callable[[], float] | None = None,
        default_lease_timeout: float | None = None,
    ):
        self.name = name
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Condition()
        self._items: deque[tuple[Any, float, int]] = deque()  # (item, enq_at, deliveries)
        self._leases: dict[int, Lease] = {}
        self._lease_ids = itertools.count(1)
        self._default_timeout = default_lease_timeout
        self._closed = False
        # counters for metrics
        self.total_enqueued = 0
        self.total_acked = 0
        self.total_redelivered = 0
        # Deepest the ready backlog has ever been: with credit-based
        # backpressure shedding load into this queue, the watermark is
        # the observable record of how far producers outran consumers.
        self._high_watermark = 0
        # Observation hook: when set, invoked as ``probe(event, fields)``
        # after every mutation, carrying a conservation snapshot.  Handlers
        # run under the queue lock and must not call back into the queue.
        self.probe: Callable[[str, dict[str, Any]], None] | None = None
        # Wakeup hook: fired (outside the queue lock) whenever items
        # become available — put/nack/expiry.  Event-driven consumers
        # point this at Wakeup.set so they block instead of sleep-polling.
        self.wakeup: Callable[[], None] | None = None

    def _fire_wakeup(self) -> None:
        """Notify the event-driven consumer; never called under the lock."""
        wakeup = self.wakeup
        if wakeup is not None:
            wakeup()

    def _note_depth(self) -> None:  # guarded-by: self._lock
        """Track the ready-backlog high watermark (caller holds lock)."""
        depth = len(self._items)
        if depth > self._high_watermark:
            self._high_watermark = depth

    # -- observation ---------------------------------------------------------
    def _emit(self, event: str, **fields: Any) -> None:  # guarded-by: self._lock
        """Emit ``event`` with a conservation snapshot (caller holds lock)."""
        probe = self.probe
        if probe is None:
            return
        probe(
            event,
            {
                "queue": self.name,
                "enqueued": self.total_enqueued,
                "acked": self.total_acked,
                "in_flight": len(self._leases),
                "ready": len(self._items),
                **fields,
            },
        )

    def conservation_delta(self) -> int:
        """``total_enqueued - total_acked - in_flight - ready``.

        Every ``put`` adds one item; ``lease`` moves it to the lease table;
        ``ack`` retires it; ``nack``/expiry moves it back.  The delta is
        therefore zero at all times — the queue-conservation invariant.
        """
        with self._lock:
            return (
                self.total_enqueued
                - self.total_acked
                - len(self._leases)
                - len(self._items)
            )

    def snapshot_items(self) -> tuple[list[Any], list[Any]]:
        """(waiting items, leased items) — chaos accounting introspection."""
        with self._lock:
            return (
                [item for (item, _enq, _d) in self._items],
                [lease.item for lease in self._leases.values()],
            )

    # -- producer side -------------------------------------------------------
    def put(self, item: Any) -> None:
        with self._lock:
            if self._closed:
                raise RuntimeError(f"queue {self.name} is closed")
            self._items.append((item, self._clock(), 0))
            self.total_enqueued += 1
            self._note_depth()
            self._emit("queue.put")
            self._lock.notify()
        self._fire_wakeup()

    def put_many(self, items: Iterable[Any]) -> int:
        """Enqueue a batch; returns the number enqueued."""
        count = 0
        with self._lock:
            if self._closed:
                raise RuntimeError(f"queue {self.name} is closed")
            now = self._clock()
            for item in items:
                self._items.append((item, now, 0))
                count += 1
            self.total_enqueued += count
            self._note_depth()
            if count:
                self._emit("queue.put_many", count=count)
                self._lock.notify(count)
        if count:
            self._fire_wakeup()
        return count

    # -- consumer side ---------------------------------------------------------
    def lease(
        self,
        timeout: float | None = 0.0,
        lease_timeout: float | None = None,
    ) -> Lease | None:
        """Dequeue the oldest item under a lease.

        Parameters
        ----------
        timeout:
            How long to block waiting for an item. ``0`` polls; ``None``
            blocks indefinitely.
        lease_timeout:
            Overrides the queue's default visibility timeout.

        Returns
        -------
        The :class:`Lease`, or ``None`` if no item arrived in time.
        """
        with self._lock:
            if not self._wait_for_item(timeout):
                return None
            item, enq_at, deliveries = self._items.popleft()
            now = self._clock()
            effective = lease_timeout if lease_timeout is not None else self._default_timeout
            lease = Lease(
                lease_id=next(self._lease_ids),
                item=item,
                leased_at=now,
                deadline=(now + effective) if effective is not None else None,
                enqueued_at=enq_at,
                deliveries=deliveries + 1,
            )
            self._leases[lease.lease_id] = lease
            if deliveries:
                self.total_redelivered += 1
            self._emit("queue.lease", deliveries=lease.deliveries)
            return lease

    def lease_many(self, max_items: int, lease_timeout: float | None = None) -> list[Lease]:
        """Non-blocking bulk lease of up to ``max_items`` (executor batching)."""
        leases: list[Lease] = []
        with self._lock:
            for _ in range(max_items):
                if not self._items:
                    break
                item, enq_at, deliveries = self._items.popleft()
                now = self._clock()
                effective = (
                    lease_timeout if lease_timeout is not None else self._default_timeout
                )
                lease = Lease(
                    lease_id=next(self._lease_ids),
                    item=item,
                    leased_at=now,
                    deadline=(now + effective) if effective is not None else None,
                    enqueued_at=enq_at,
                    deliveries=deliveries + 1,
                )
                self._leases[lease.lease_id] = lease
                if deliveries:
                    self.total_redelivered += 1
                leases.append(lease)
            if leases:
                self._emit("queue.lease_many", count=len(leases))
        return leases

    def ack(self, lease_id: int) -> bool:
        """Complete a lease; the item will never be redelivered."""
        with self._lock:
            if self._leases.pop(lease_id, None) is None:
                self._emit("queue.ack_rejected", lease_id=lease_id)
                return False
            self.total_acked += 1
            self._emit("queue.ack")
            return True

    def nack(self, lease_id: int) -> bool:
        """Return a leased item to the front of the queue for redelivery."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                self._emit("queue.nack_rejected", lease_id=lease_id)
                return False
            self._items.appendleft((lease.item, lease.enqueued_at, lease.deliveries))
            self._note_depth()
            self._emit("queue.nack")
            self._lock.notify()
        self._fire_wakeup()
        return True

    def nack_all(self) -> int:
        """Requeue every outstanding lease (endpoint-disconnect path).

        Items return in age order: oldest ends up at the front.
        """
        with self._lock:
            leases = sorted(self._leases.values(), key=lambda l: l.enqueued_at, reverse=True)
            for lease in leases:
                self._items.appendleft((lease.item, lease.enqueued_at, lease.deliveries))
            count = len(leases)
            self._leases.clear()
            self._note_depth()
            if count:
                self._emit("queue.nack_all", count=count)
                self._lock.notify(count)
        if count:
            self._fire_wakeup()
        return count

    def requeue_expired(self) -> int:
        """Requeue every lease past its visibility deadline."""
        with self._lock:
            now = self._clock()
            expired = [
                l for l in self._leases.values() if l.deadline is not None and l.deadline <= now
            ]
            for lease in sorted(expired, key=lambda l: l.enqueued_at, reverse=True):
                del self._leases[lease.lease_id]
                self._items.appendleft((lease.item, lease.enqueued_at, lease.deliveries))
            self._note_depth()
            if expired:
                self._emit("queue.requeue_expired", count=len(expired))
                self._lock.notify(len(expired))
        if expired:
            self._fire_wakeup()
        return len(expired)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._lock.notify_all()

    # -- introspection -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def depth(self) -> int:
        """Ready (not-yet-leased) backlog depth."""
        with self._lock:
            return len(self._items)

    @property
    def high_watermark(self) -> int:
        """Deepest the ready backlog has ever been."""
        with self._lock:
            return self._high_watermark

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._leases)

    def peek_ages(self) -> list[float]:
        """Queue-delay of every waiting item (diagnostics)."""
        with self._lock:
            now = self._clock()
            return [now - enq for (_, enq, _) in self._items]

    # -- internals ---------------------------------------------------------------
    def _wait_for_item(self, timeout: float | None) -> bool:  # guarded-by: self._lock
        """Wait until an item is available; caller holds the lock."""
        if self._items:
            return True
        if timeout == 0.0:
            return False
        deadline = None if timeout is None else self._clock() + timeout
        while not self._items:
            if self._closed:
                return False
            remaining = None if deadline is None else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                return False
            self._lock.wait(remaining)
        return True
