"""In-process message transport (ZeroMQ substitute).

funcX connects its forwarders, agents, managers and workers with ZeroMQ
sockets using "asynchronous communication patterns" (paper section 4.3).
This package provides channels with the same properties the paper's
experiments depend on — ordered delivery, configurable latency, explicit
disconnect/reconnect, and message drop injection — so the fault-tolerance
experiments (section 5.4) are reproducible deterministically.
"""

from repro.transport.channel import Channel, ChannelEnd, Network
from repro.transport.heartbeat import HeartbeatTracker
from repro.transport.messages import (
    Advertisement,
    CommandMessage,
    Heartbeat,
    Message,
    Registration,
    ResultMessage,
    TaskMessage,
)

__all__ = [
    "Channel",
    "ChannelEnd",
    "Network",
    "HeartbeatTracker",
    "Message",
    "TaskMessage",
    "ResultMessage",
    "Heartbeat",
    "Registration",
    "Advertisement",
    "CommandMessage",
]
