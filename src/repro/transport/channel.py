"""Bidirectional in-process channels with latency and failure injection.

A :class:`Channel` joins two :class:`ChannelEnd` objects.  Each end has an
inbox ordered by *delivery time*: a send stamps the message with
``now + latency`` and the receiving end only surfaces messages whose
delivery time has arrived.  Under the wall clock a blocking ``recv`` waits
out the remaining latency, so injected latency is physically real in the
live fabric; under a simulation clock the DES advances time instead.

Failure injection supports the paper's fault-tolerance experiments
(section 5.4):

* ``disconnect()`` — the end goes down; sends toward it are dropped (as a
  crashed process would drop them) and peers observe missing heartbeats.
* ``reconnect()`` — the end comes back; queued *new* traffic flows again.
* ``drop_probability`` — random message loss for stress testing the
  at-least-once delivery machinery.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from typing import Any, Callable

from repro.errors import ChannelClosed, Disconnected


class ChannelEnd:
    """One side of a channel: ``send`` to the peer, ``recv`` from it."""

    def __init__(self, name: str, clock: Callable[[], float]):
        self.name = name
        self._clock = clock
        self._peer: "ChannelEnd | None" = None
        self._channel: "Channel | None" = None
        self._lock = threading.Condition()
        self._inbox: list[tuple[float, int, Any]] = []
        self._seq = itertools.count()
        self._connected = True
        self._closed = False
        # Serial-link model: the instant this end's *incoming* link is
        # free again.  Each transfer occupies the link for the channel's
        # ``transfer_cost`` seconds, so N individual sends serialize while
        # one coalesced batch pays the cost once (the per-message framing/
        # syscall overhead real message fabrics amortize with batching).
        self._busy_until = 0.0  # guarded-by: self._lock
        self.sent_count = 0  # guarded-by: self._lock
        self.received_count = 0  # guarded-by: self._lock
        # Wakeup hook: called with the delivery time of each arriving
        # transfer, *after* the inbox lock is released.  Event-driven
        # receivers point this at Wakeup.set_at so they block on arrival
        # instead of sleep-polling.
        self.wakeup: Callable[[float], None] | None = None

    @property
    def transfer_cost(self) -> float:
        """The bound channel's per-transfer link occupancy (0 if unbound).

        Senders sizing coalesced waves (the forwarder's adaptive Nagle
        policy) read this to scale their hold budget to what a transfer
        actually costs on this link.
        """
        channel = self._channel
        return channel.transfer_cost if channel is not None else 0.0

    # -- wiring -----------------------------------------------------------
    def _bind(self, peer: "ChannelEnd", channel: "Channel") -> None:
        self._peer = peer
        self._channel = channel

    # -- sending ------------------------------------------------------------
    def send(self, message: Any) -> bool:
        """Send ``message`` to the peer.

        Returns ``True`` if the message was handed to the network.  Sends
        from a disconnected end raise :class:`Disconnected`; messages
        toward a disconnected peer are silently dropped (the network
        accepted them but the crashed process never sees them), mirroring
        how a real ZeroMQ peer failure manifests.
        """
        if self._closed:
            raise ChannelClosed(f"channel end {self.name} is closed")
        if not self._connected:
            raise Disconnected(f"channel end {self.name} is disconnected")
        assert self._peer is not None and self._channel is not None
        channel = self._channel
        if channel.rng.random() < channel.drop_probability:
            channel.dropped_count += 1
            channel.emit("channel.dropped", end=self.name, reason="random-loss")
            return False
        if not self._peer._connected or self._peer._closed:
            channel.dropped_count += 1
            channel.emit("channel.dropped", end=self.name, reason="peer-down")
            return False
        latency = channel.sample_latency()
        self._peer._deliver_batch(self._clock(), latency,
                                  channel.transfer_cost, (message,))
        with self._lock:
            self.sent_count += 1
        return True

    def send_many(self, messages: Any) -> int:
        """Send several messages as *one* transfer.

        All messages share a single latency sample and a single
        transfer-cost occupancy of the link, and are delivered together —
        the coalescing primitive batch envelopes and piggybacked control
        traffic (heartbeat + advertisement) ride on.  A random loss drops
        the whole transfer, as it would a single framed batch.

        Returns the number of messages handed to the network (all of
        them, or 0).
        """
        messages = tuple(messages)
        if not messages:
            return 0
        if self._closed:
            raise ChannelClosed(f"channel end {self.name} is closed")
        if not self._connected:
            raise Disconnected(f"channel end {self.name} is disconnected")
        assert self._peer is not None and self._channel is not None
        channel = self._channel
        if channel.rng.random() < channel.drop_probability:
            channel.dropped_count += len(messages)
            channel.emit("channel.dropped", end=self.name,
                         reason="random-loss", count=len(messages))
            return 0
        if not self._peer._connected or self._peer._closed:
            channel.dropped_count += len(messages)
            channel.emit("channel.dropped", end=self.name,
                         reason="peer-down", count=len(messages))
            return 0
        latency = channel.sample_latency()
        self._peer._deliver_batch(self._clock(), latency,
                                  channel.transfer_cost, messages)
        with self._lock:
            self.sent_count += len(messages)
        if len(messages) > 1:
            channel.coalesced_count += len(messages)
        return len(messages)

    def _deliver(self, deliver_at: float, message: Any) -> None:
        with self._lock:
            heapq.heappush(self._inbox, (deliver_at, next(self._seq), message))
            self._lock.notify()
        wakeup = self.wakeup
        if wakeup is not None:
            wakeup(deliver_at)

    def _deliver_batch(self, now: float, latency: float, cost: float,
                       messages: tuple) -> None:
        """Deliver one transfer: occupy the incoming link for ``cost``
        seconds past any transfer already in progress, then add the
        propagation ``latency``."""
        with self._lock:
            if cost > 0.0:
                start = max(now, self._busy_until)
                self._busy_until = start + cost
                deliver_at = start + cost + latency
            else:
                deliver_at = now + latency
            for message in messages:
                heapq.heappush(self._inbox,
                               (deliver_at, next(self._seq), message))
            self._lock.notify_all()
        # Fire the wakeup outside the inbox lock: the hook takes the
        # receiver's wakeup lock and must stay a leaf acquisition.
        wakeup = self.wakeup
        if wakeup is not None:
            wakeup(deliver_at)

    # -- receiving -------------------------------------------------------------
    def recv(self, timeout: float | None = 0.0) -> Any | None:
        """Receive the next ripe message.

        Parameters
        ----------
        timeout:
            ``0`` polls, ``None`` blocks indefinitely, otherwise blocks up
            to ``timeout`` seconds (wall-clock fabrics only).
        """
        deadline = None if timeout is None else self._clock() + (timeout or 0.0)
        with self._lock:
            while True:
                if self._closed:
                    raise ChannelClosed(f"channel end {self.name} is closed")
                now = self._clock()
                if self._inbox and self._inbox[0][0] <= now:
                    _, _, message = heapq.heappop(self._inbox)
                    self.received_count += 1
                    return message
                # Determine how long to wait: until the next message ripens,
                # the deadline, or a notification.
                wait = None
                if self._inbox:
                    wait = self._inbox[0][0] - now
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                if timeout == 0.0 and (wait is None or wait > 0):
                    # Pure poll: nothing ripe right now.
                    if not self._inbox or self._inbox[0][0] > now:
                        return None
                self._lock.wait(wait)

    def recv_all_ready(self, max_messages: int | None = None) -> list[Any]:
        """Drain ripe messages without blocking.

        ``max_messages`` bounds the drain so one flooded channel cannot
        monopolize a component's step (heartbeat/liveness handling runs
        between drains); ``None`` drains everything ripe.
        """
        messages: list[Any] = []
        with self._lock:
            now = self._clock()
            while self._inbox and self._inbox[0][0] <= now:
                if max_messages is not None and len(messages) >= max_messages:
                    break
                _, _, message = heapq.heappop(self._inbox)
                messages.append(message)
            self.received_count += len(messages)
        return messages

    def pending(self) -> int:
        """Messages queued for this end (ripe or still in flight)."""
        with self._lock:
            return len(self._inbox)

    # -- failure injection ---------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._connected and not self._closed

    def disconnect(self, drop_inbox: bool = True) -> None:
        """Simulate this end's process dying or losing the network.

        With ``drop_inbox`` (default) any undelivered messages are lost,
        as they would be in a crashed process's memory.
        """
        with self._lock:
            self._connected = False
            if drop_inbox:
                if self._channel is not None:
                    self._channel.dropped_count += len(self._inbox)
                    if self._inbox:
                        self._channel.emit(
                            "channel.dropped", end=self.name,
                            reason="disconnect", count=len(self._inbox),
                        )
                self._inbox.clear()
            self._lock.notify_all()

    def reconnect(self) -> None:
        with self._lock:
            if self._closed:
                raise ChannelClosed(f"channel end {self.name} is closed")
            self._connected = True
            self._lock.notify_all()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._inbox.clear()
            self._lock.notify_all()


class Channel:
    """A pair of linked channel ends with a shared latency/failure model.

    Parameters
    ----------
    name:
        Diagnostic label.
    clock:
        Shared time source for both ends.
    latency:
        Fixed one-way latency in seconds, or a zero-argument callable
        sampling a latency per message.
    drop_probability:
        Probability an accepted message is lost in transit.
    transfer_cost:
        Seconds each *transfer* occupies the link (per-message framing /
        syscall overhead).  Individual sends serialize behind each other;
        a coalesced ``send_many`` or batch envelope pays it once — the
        overhead the paper's batching (§4.7, §5.5.2) amortizes.  ``0``
        (default) models an infinitely fast link, the pre-batching
        behavior.
    seed:
        Seed for the channel's private RNG (reproducible drops/jitter).
    """

    def __init__(
        self,
        name: str = "channel",
        clock: Callable[[], float] | None = None,
        latency: float | Callable[[], float] = 0.0,
        drop_probability: float = 0.0,
        transfer_cost: float = 0.0,
        seed: int | None = None,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if transfer_cost < 0.0:
            raise ValueError("transfer_cost must be non-negative")
        self.name = name
        clock = clock or time.monotonic
        self._latency = latency
        self.drop_probability = drop_probability
        self.transfer_cost = transfer_cost
        self.rng = random.Random(seed)
        self.dropped_count = 0
        # Messages that crossed the channel inside a coalesced transfer.
        self.coalesced_count = 0
        # Observation hook: when set, invoked as ``probe(event, fields)``
        # for message-loss events (chaos invariant probes attach here).
        self.probe: Callable[[str, dict[str, Any]], None] | None = None
        self.left = ChannelEnd(f"{name}.left", clock)
        self.right = ChannelEnd(f"{name}.right", clock)
        self.left._bind(self.right, self)
        self.right._bind(self.left, self)

    def emit(self, event: str, **fields: Any) -> None:
        probe = self.probe
        if probe is not None:
            probe(event, {"channel": self.name, **fields})

    def set_latency(self, latency: float | Callable[[], float]) -> None:
        """Swap the latency model at runtime (chaos latency spikes)."""
        self._latency = latency

    def sample_latency(self) -> float:
        if callable(self._latency):
            value = self._latency()
        else:
            value = self._latency
        return max(0.0, float(value))

    def close(self) -> None:
        self.left.close()
        self.right.close()


class Network:
    """Factory for channels sharing a clock and default latency model.

    Used by the live fabric to wire service↔endpoint↔manager↔worker links
    with realistic latencies (e.g. 18.2 ms WAN to the service, <1 ms
    intra-site, per paper section 5.1).
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        default_latency: float | Callable[[], float] = 0.0,
        seed: int | None = None,
    ):
        self._clock = clock or time.monotonic
        self._default_latency = default_latency
        self._seed_counter = itertools.count(seed if seed is not None else 0)
        self._use_seed = seed is not None
        self.channels: list[Channel] = []

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    def create_channel(
        self,
        name: str,
        latency: float | Callable[[], float] | None = None,
        drop_probability: float = 0.0,
        transfer_cost: float = 0.0,
    ) -> Channel:
        channel = Channel(
            name=name,
            clock=self._clock,
            latency=self._default_latency if latency is None else latency,
            drop_probability=drop_probability,
            transfer_cost=transfer_cost,
            seed=next(self._seed_counter) if self._use_seed else None,
        )
        self.channels.append(channel)
        return channel

    def find(self, name: str) -> Channel | None:
        """The channel created under ``name``, or ``None``."""
        for channel in self.channels:
            if channel.name == name:
                return channel
        return None

    def close_all(self) -> None:
        for channel in self.channels:
            channel.close()

    def total_dropped(self) -> int:
        return sum(c.dropped_count for c in self.channels)
