"""Heartbeat bookkeeping shared by forwarders, agents and watchdogs.

funcX detects failures at every level with periodic heartbeats: the
forwarder detects lost agents, and the agent's watchdog detects lost
managers (paper sections 4.1, 4.3).  :class:`HeartbeatTracker` is the
time-agnostic policy object both fabrics share: callers feed it beats and
ask which components have exceeded the grace period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class _BeatRecord:
    first_seen: float
    last_seen: float
    beats: int


class HeartbeatTracker:
    """Track component liveness from heartbeat arrival times.

    Parameters
    ----------
    period:
        Expected interval between heartbeats, seconds.
    grace_periods:
        How many missed periods before a component is declared lost.
    clock:
        Injectable time source (monotonic or simulation clock).
    monotonic:
        Declares which clock domain ``clock`` belongs to.  Liveness
        deadlines are computed by subtracting clock readings, which is
        only meaningful within one domain; pass ``monotonic=False`` when
        feeding wall-clock timestamps (e.g. replaying recorded beats) so
        the mismatch is explicit at the construction site.
    """

    def __init__(
        self,
        period: float = 1.0,
        grace_periods: int = 3,
        clock: Callable[[], float] | None = None,
        monotonic: bool = True,
    ):
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        if grace_periods < 1:
            raise ValueError("grace_periods must be >= 1")
        import time as _time

        self.period = period
        self.grace_periods = grace_periods
        self.monotonic = monotonic
        self._clock = clock or _time.monotonic  # clock-domain: monotonic
        self._records: dict[str, _BeatRecord] = {}

    # ------------------------------------------------------------------
    def beat(self, component: str, timestamp: float | None = None) -> None:
        """Record a heartbeat from ``component``."""
        now = self._clock() if timestamp is None else timestamp
        record = self._records.get(component)
        if record is None:
            self._records[component] = _BeatRecord(first_seen=now, last_seen=now, beats=1)
        else:
            record.last_seen = max(record.last_seen, now)
            record.beats += 1

    def forget(self, component: str) -> bool:
        """Stop tracking ``component`` (clean deregistration)."""
        return self._records.pop(component, None) is not None

    # ------------------------------------------------------------------
    @property
    def deadline(self) -> float:
        """Silence longer than this marks a component lost."""
        return self.period * self.grace_periods

    def is_alive(self, component: str) -> bool:
        record = self._records.get(component)
        if record is None:
            return False
        return (self._clock() - record.last_seen) <= self.deadline

    def last_seen(self, component: str) -> float | None:
        record = self._records.get(component)
        return None if record is None else record.last_seen

    def lost_components(self) -> list[str]:
        """Every tracked component that exceeded the grace period."""
        now = self._clock()
        return sorted(
            name
            for name, record in self._records.items()
            if (now - record.last_seen) > self.deadline
        )

    def alive_components(self) -> list[str]:
        now = self._clock()
        return sorted(
            name
            for name, record in self._records.items()
            if (now - record.last_seen) <= self.deadline
        )

    def tracked(self) -> list[str]:
        return sorted(self._records)

    def beat_count(self, component: str) -> int:
        record = self._records.get(component)
        return 0 if record is None else record.beats
