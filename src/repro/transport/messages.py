"""Wire message types exchanged between funcX components.

All messages are plain frozen dataclasses.  Payloads (function bodies,
arguments, results) travel as *already-serialized* routed buffers — the
forwarder and agent route buffers by tag without deserializing them, which
is the property the serialization design (section 4.6) exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.trace import TraceContext


@dataclass(frozen=True)
class Message:
    """Base class; ``sender`` identifies the originating component."""

    sender: str


@dataclass(frozen=True)
class TaskMessage(Message):
    """A task dispatched toward a worker.

    Attributes
    ----------
    task_id:
        Service-assigned UUID for this invocation.
    function_id:
        Registered function UUID.
    function_buffer:
        Serialized function body (routed buffer bytes).
    payload_buffer:
        Serialized ``(args, kwargs)`` (routed buffer bytes).
    container_image:
        Container the function must run in, or ``None`` for the bare
        worker Python environment.
    trace:
        The task's :class:`~repro.observability.trace.TraceContext`,
        propagated service → forwarder → agent → manager → worker so
        every stage records its span; ``None`` when tracing is disabled.
    """

    task_id: str = ""
    function_id: str = ""
    function_buffer: bytes = b""
    payload_buffer: bytes = b""
    container_image: str | None = None
    submitted_at: float = 0.0
    trace: "TraceContext | None" = field(default=None, compare=False)


@dataclass(frozen=True)
class ResultMessage(Message):
    """A completed task's outcome heading back to the service.

    ``trace`` carries the task's trace context back up the stack so the
    forwarder can stamp the result-return span and the service can
    finalize the trace.
    """

    task_id: str = ""
    success: bool = True
    result_buffer: bytes = b""
    execution_time: float = 0.0
    worker_id: str = ""
    completed_at: float = 0.0
    trace: "TraceContext | None" = field(default=None, compare=False)
    #: Set on the client-facing result stream when the payload was
    #: spilled to a staging store: a ``DataRef.as_argument()`` record the
    #: receiver resolves via ``repro.staging.fetch_ref``; the
    #: ``result_buffer`` ships empty in that case.
    result_ref: dict | None = None
    #: The task reached CANCELLED instead of SUCCESS/FAILED; receivers
    #: resolve the handle with ``TaskCancelled``.
    cancelled: bool = False
    #: Failure text for FAILED tasks whose worker produced no serialized
    #: exception wrapper (e.g. retries exhausted inside the service).
    exception_text: str = ""


@dataclass(frozen=True)
class TaskBatchMessage(Message):
    """N tasks coalesced into one channel transfer (§4.7, §5.5.2).

    ``tasks`` usually carry an empty ``function_buffer``: each distinct
    function body is shipped at most once per batch in
    ``function_buffers`` (keyed by ``function_id``) and cached by the
    receiver for the rest of the sender's incarnation, so repeated
    invocations of the same function pay the body transfer once.

    Attributes
    ----------
    tasks:
        The coalesced task messages, dispatch order preserved.
    function_buffers:
        ``function_id -> serialized body`` for every function whose body
        the receiver is not already known to hold.
    incarnation:
        The sender's registration lifetime; receivers reset their buffer
        tables when a new incarnation registers, so a stale cache can
        never serve a body across a reconnect.
    """

    tasks: tuple[TaskMessage, ...] = ()
    function_buffers: dict[str, bytes] = field(default_factory=dict)
    incarnation: int = 0


@dataclass(frozen=True)
class ResultBatchMessage(Message):
    """N results coalesced into one channel transfer (symmetric to
    :class:`TaskBatchMessage` on the return path).

    The same envelope carries the service→client result *stream*
    (push-based delivery): there ``delivery_id`` identifies the batch for
    the subscriber's acknowledgement (redelivery happens under the same
    id space until acked) and ``subscriber_id`` names the subscription
    the batch belongs to.  Both ship empty on the worker→service path.
    """

    results: tuple[ResultMessage, ...] = ()
    delivery_id: str = ""
    subscriber_id: str = ""


@dataclass(frozen=True)
class Heartbeat(Message):
    """Periodic liveness signal (agent→forwarder, manager→agent).

    ``incarnation`` tags the beat with the sender's lifetime counter so a
    receiver can discard beats from a lifetime that predates the latest
    registration (a late beat from a dead incarnation must not revive the
    component).  ``0`` means the sender does not track incarnations.

    ``credit`` piggybacks the sender's aggregate credit window (the total
    in-flight population its downstream pool can absorb) on the liveness
    beat, so flow control costs no extra messages.  ``-1`` means the
    sender does not report credit (legacy peers): the receiver treats the
    window as unlimited.
    """

    timestamp: float = 0.0
    outstanding_tasks: int = 0
    incarnation: int = 0
    credit: int = -1


@dataclass(frozen=True)
class Registration(Message):
    """A component announcing itself to its parent.

    Managers register with the agent once all their workers connect
    (section 4.3); agents register with the service to obtain a forwarder.
    ``incarnation`` counts the sender's registrations — each re-register
    after a crash/recovery starts a new lifetime whose heartbeats carry
    the same tag.
    """

    component_type: str = ""  # "endpoint" | "manager" | "worker"
    capacity: int = 0
    container_types: tuple[str, ...] = ()
    metadata: dict[str, Any] = field(default_factory=dict)
    incarnation: int = 0


@dataclass(frozen=True)
class Advertisement(Message):
    """A manager advertising available (and anticipated) capacity.

    ``prefetch_capacity`` implements "advertising with opportunistic
    prefetching" (section 4.7): the manager asks for more tasks than it has
    idle workers so network transfer overlaps computation.

    ``credit_window`` is the manager's *static* credit window — the total
    task population (workers + prefetch allowance) it is willing to hold
    at once, independent of momentary idleness.  The agent sums windows
    over live managers and forwards the aggregate upstream on its
    heartbeat.  ``-1`` means the manager does not report a window
    (legacy peers).
    """

    manager_id: str = ""
    idle_workers: int = 0
    prefetch_capacity: int = 0
    deployed_containers: tuple[str, ...] = ()
    credit_window: int = -1

    @property
    def total_request(self) -> int:
        return self.idle_workers + self.prefetch_capacity


@dataclass(frozen=True)
class CommandMessage(Message):
    """Control-plane commands (shutdown, suspend, resume, drain)."""

    command: str = ""
    target: str = ""
    arguments: dict[str, Any] = field(default_factory=dict)
