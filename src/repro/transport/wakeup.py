"""Wakeup: the event-driven replacement for sleep-polling loops.

The forwarder, agent, and manager loops used to sleep a fixed poll
interval whenever a step processed nothing, quantizing every hop's
latency by the poll period.  A :class:`Wakeup` lets a loop block until
something actually happens: channels fire :meth:`set_at` with each
transfer's delivery time (messages ripen *later* than they arrive, so
the waiter must wake when the message becomes receivable, not when it
was enqueued), queues and worker pools fire :meth:`set` the moment an
item is available.  The loop's poll interval survives only as a
liveness/heartbeat fallback timeout on :meth:`wait`.

The internal condition is a *leaf* lock: nothing else is ever acquired
while it is held, so wiring wakeups across components cannot create
lock-order cycles.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable


class Wakeup:
    """A latching alarm clock for event-driven loops.

    ``set()`` wakes the waiter immediately; ``set_at(when)`` schedules a
    wake for ``when``.  Every scheduled time is retained (a heap, not
    just the earliest): with several transfers in flight the waiter must
    wake once per ripen time, not only at the first — dropping the later
    schedules would leave ripe messages sitting until the fallback poll.
    Both latch: a signal raised while nobody is waiting is consumed by
    the next :meth:`wait`, so a delivery racing the loop between
    ``step()`` and ``wait()`` is never lost.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.monotonic  # clock-domain: monotonic
        self._lock = threading.Condition()
        self._fired = False            # guarded-by: self._lock
        self._wake_heap: list[float] = []  # guarded-by: self._lock

    def set(self) -> None:
        """Signal an immediate wakeup (item ready right now)."""
        with self._lock:
            self._fired = True
            self._lock.notify_all()

    def set_at(self, when: float) -> None:
        """Schedule a wakeup for ``when`` (a message's delivery time)."""
        with self._lock:
            if when <= self._clock():
                self._fired = True
            else:
                heapq.heappush(self._wake_heap, when)
            self._lock.notify_all()

    def wait(self, timeout: float) -> bool:
        """Block until a signal ripens or ``timeout`` elapses.

        Returns ``True`` when woken by a signal, ``False`` on the
        fallback timeout.  Ripened schedules are consumed; schedules
        still in the future survive for later waits.
        """
        deadline = self._clock() + timeout
        with self._lock:
            while True:
                now = self._clock()
                while self._wake_heap and self._wake_heap[0] <= now:
                    heapq.heappop(self._wake_heap)
                    self._fired = True
                if self._fired:
                    self._fired = False
                    return True
                remaining = deadline - now
                if remaining <= 0:
                    return False
                if self._wake_heap:
                    remaining = min(remaining, self._wake_heap[0] - now)
                self._lock.wait(remaining)
