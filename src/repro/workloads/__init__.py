"""Workload models: the paper's six science case studies and the
synthetic functions (no-op / sleep / stress) used throughout section 5.
"""

from repro.workloads.casestudies import (
    CASE_STUDIES,
    CaseStudy,
    case_study,
)
from repro.workloads.functions import (
    double_after_sleep,
    echo,
    make_sleep_function,
    noop,
    simulated_case_function,
    sleep_100ms,
    stress,
)
from repro.workloads.generators import (
    ArrivalEvent,
    burst_arrivals,
    poisson_arrivals,
    uniform_rate_arrivals,
)

__all__ = [
    "CaseStudy",
    "CASE_STUDIES",
    "case_study",
    "noop",
    "echo",
    "sleep_100ms",
    "make_sleep_function",
    "stress",
    "double_after_sleep",
    "simulated_case_function",
    "ArrivalEvent",
    "uniform_rate_arrivals",
    "poisson_arrivals",
    "burst_arrivals",
]
