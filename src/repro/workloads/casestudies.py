"""The six scientific case studies (paper section 2, figure 1).

Each case study is modelled by its function-duration distribution; the
paper's figure 1 plots the latency distribution of 100 calls per study.
Parameters are calibrated from the durations quoted in the text:

* **Metadata extraction (Xtract)** — extractors run "between 3
  milliseconds and 15 seconds"; heavily right-skewed (most files are
  small text/CSV, a few need topic models).
* **ML inference (DLHub)** — the MNIST digit-identification model runs in
  tens of milliseconds; other models run seconds to minutes.
* **Synchrotron Serial Crystallography (SSX)** — DIALS stills processing
  takes "1–2 seconds per sample".
* **Neurocartography** — QC / center-detection / preview steps on ~20 GB
  per minute streams; seconds each.
* **High Energy Physics (HEP)** — "successive compiled functions, each
  running for seconds".
* **X-ray Photon Correlation Spectroscopy (XPCS)** — the XPCS-eigen
  ``corr`` function executes "for approximately 50 seconds".

Section 5.5.4 confirms the overall span used for the batching case
studies: "ranging in execution time from half a second through to almost
one minute".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CaseStudy:
    """A science workload characterized by its duration distribution.

    Durations are sampled from a clipped lognormal: ``median`` and
    ``sigma`` set the body of the distribution, ``low``/``high`` clip the
    tails to the ranges the paper quotes.
    """

    name: str
    description: str
    median: float          # seconds
    sigma: float           # lognormal shape
    low: float             # clip floor, seconds
    high: float            # clip ceiling, seconds

    def __post_init__(self) -> None:
        if not (self.low <= self.median <= self.high):
            raise ValueError(f"{self.name}: median outside [low, high]")
        if self.sigma < 0:
            raise ValueError(f"{self.name}: sigma must be non-negative")

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> float:
        """One function duration, seconds."""
        if self.sigma == 0:
            return self.median
        value = rng.lognormvariate(math.log(self.median), self.sigma)
        return min(self.high, max(self.low, value))

    def sample_many(self, n: int, seed: int | None = None) -> np.ndarray:
        """Vectorized sampling for figure-1-style distributions."""
        if n < 0:
            raise ValueError("n must be non-negative")
        gen = np.random.default_rng(seed)
        if self.sigma == 0:
            return np.full(n, self.median)
        values = gen.lognormal(mean=math.log(self.median), sigma=self.sigma, size=n)
        return np.clip(values, self.low, self.high)

    @property
    def mean_estimate(self) -> float:
        """Analytic lognormal mean (pre-clipping) — a planning figure."""
        return self.median * math.exp(self.sigma**2 / 2.0)


#: The six case studies of section 2, keyed by short name.
CASE_STUDIES: dict[str, CaseStudy] = {
    "metadata": CaseStudy(
        name="metadata",
        description="Xtract metadata extraction at the edge",
        median=0.5,
        sigma=1.6,
        low=0.003,
        high=15.0,
    ),
    "ml_inference": CaseStudy(
        name="ml_inference",
        description="DLHub MNIST digit-identification inference",
        median=0.08,
        sigma=0.5,
        low=0.02,
        high=1.0,
    ),
    "ssx": CaseStudy(
        name="ssx",
        description="DIALS stills processing for serial crystallography",
        median=1.5,
        sigma=0.25,
        low=1.0,
        high=2.5,
    ),
    "neuro": CaseStudy(
        name="neuro",
        description="Neurocartography QC / center detection / preview",
        median=3.0,
        sigma=0.7,
        low=0.5,
        high=20.0,
    ),
    "hep": CaseStudy(
        name="hep",
        description="Coffea columnar HEP analysis subtasks",
        median=2.0,
        sigma=0.6,
        low=0.5,
        high=15.0,
    ),
    "xpcs": CaseStudy(
        name="xpcs",
        description="XPCS-eigen corr pixel-correlation analysis",
        median=50.0,
        sigma=0.15,
        low=35.0,
        high=70.0,
    ),
}


def case_study(name: str) -> CaseStudy:
    """Look up a case study by short name."""
    try:
        return CASE_STUDIES[name]
    except KeyError:
        raise KeyError(
            f"unknown case study {name!r}; known: {sorted(CASE_STUDIES)}"
        ) from None
