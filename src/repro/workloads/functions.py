"""Real Python functions used by the evaluation (paper section 5.2).

"To measure scalability we created functions of various durations: a
0-second 'no-op' function that exits immediately, a 1-second 'sleep'
function, and a 1-minute CPU 'stress' function that keeps a CPU core at
100% utilization."

These execute for real on the live fabric; the simulated fabric uses only
their *durations*.  Every function body imports what it needs (paper
section 3: "the function body must specify all imported modules") so the
source-code serializer can ship them.
"""

from __future__ import annotations

from typing import Any


def noop() -> None:
    """The 0-second no-op: exits immediately."""
    return None


def echo(payload: str = "hello-world") -> str:
    """The Table 1 latency probe: returns its input string."""
    return payload


def sleep_100ms() -> float:
    """The 100 ms sleep used by the fault-tolerance timelines (§5.4)."""
    import time

    time.sleep(0.1)
    return 0.1


def make_sleep_function(duration: float):
    """Build a sleep function of a given duration (1 s, 10 s, 20 s ...).

    Returns a closure, exercising the code-pickle serialization path.
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")

    def sleeper() -> float:
        import time

        time.sleep(duration)
        return duration

    sleeper.__name__ = f"sleep_{duration:g}s"
    return sleeper


def stress(duration: float = 60.0) -> int:
    """Keep one CPU core at 100% for ``duration`` seconds.

    Returns the number of busy-loop iterations performed.
    """
    import time

    deadline = time.perf_counter() + duration
    iterations = 0
    x = 1.0
    while time.perf_counter() < deadline:
        x = (x * 1.0000001) % 1e9
        iterations += 1
    return iterations


def double_after_sleep(x: float) -> float:
    """The Table 3 memoization probe: sleep one second, return 2*x."""
    import time

    time.sleep(1.0)
    return 2 * x


def busy_10us(_item: int = 0) -> int:
    """A ~10 microsecond function (figure 9's map-throughput workload).

    Accepts (and ignores) one positional argument so it can be mapped
    over an input iterator, as the paper's 10M-function sweep does.
    """
    total = 0
    for i in range(120):
        total += i * i
    return total


def simulated_case_function(case_name: str, scale: float = 1.0):
    """A runnable stand-in for a science case-study function.

    Sleeps a duration drawn from the case study's distribution (scaled by
    ``scale`` so tests/examples can compress time), then returns a small
    result record like the real extractors/models do.
    """

    def run(sample_id: int = 0, seed: int | None = None) -> dict[str, Any]:
        import random
        import time

        from repro.workloads.casestudies import case_study

        study = case_study(case_name)
        rng = random.Random(seed if seed is not None else sample_id)
        duration = study.sample(rng) * scale
        time.sleep(duration)
        return {
            "case": case_name,
            "sample_id": sample_id,
            "duration": duration,
        }

    run.__name__ = f"case_{case_name}"
    return run


# ---------------------------------------------------------------------------
# Realistic example-application functions (used by examples/, executed live).
# ---------------------------------------------------------------------------

def extract_text_metadata(document: str) -> dict[str, Any]:
    """An Xtract-style metadata extractor: summarize a text document."""
    import re
    from collections import Counter

    words = re.findall(r"[a-zA-Z']+", document.lower())
    counts = Counter(words)
    return {
        "n_chars": len(document),
        "n_words": len(words),
        "n_unique": len(counts),
        "top_words": counts.most_common(5),
    }


def extract_tabular_metadata(rows: list[list[float]]) -> dict[str, Any]:
    """An Xtract-style aggregate extractor over a numeric table."""
    import math

    if not rows:
        return {"n_rows": 0, "n_cols": 0, "column_means": []}
    n_cols = len(rows[0])
    if any(len(row) != n_cols for row in rows):
        raise ValueError("ragged table")
    sums = [0.0] * n_cols
    for row in rows:
        for j, value in enumerate(row):
            sums[j] += value
    means = [s / len(rows) for s in sums]
    variances = [0.0] * n_cols
    for row in rows:
        for j, value in enumerate(row):
            variances[j] += (value - means[j]) ** 2
    stds = [math.sqrt(v / len(rows)) for v in variances]
    return {
        "n_rows": len(rows),
        "n_cols": n_cols,
        "column_means": means,
        "column_stds": stds,
    }


def infer_digit(pixels: list[float]) -> dict[str, Any]:
    """A DLHub-style inference function: nearest-centroid 'MNIST' digit.

    A deterministic toy classifier — each digit's centroid is a synthetic
    8x8 intensity pattern — exercising the ship-model-to-data path without
    a real framework.
    """
    import math

    if len(pixels) != 64:
        raise ValueError("expected a flattened 8x8 image (64 values)")
    best_digit, best_distance = -1, math.inf
    for digit in range(10):
        distance = 0.0
        for idx, pixel in enumerate(pixels):
            # synthetic centroid: banded pattern varying per digit
            centroid = ((idx * (digit + 3)) % 17) / 16.0
            distance += (pixel - centroid) ** 2
        if distance < best_distance:
            best_digit, best_distance = digit, distance
    return {"digit": best_digit, "distance": best_distance}


def correlate_frames(frames: list[list[float]], max_lag: int = 4) -> list[float]:
    """An XPCS-style intensity autocorrelation g2(lag) over detector frames."""
    if not frames:
        raise ValueError("no frames supplied")
    n_pixels = len(frames[0])
    if any(len(f) != n_pixels for f in frames):
        raise ValueError("inconsistent frame sizes")
    n = len(frames)
    mean_intensity = [
        sum(frame[p] for frame in frames) / n for p in range(n_pixels)
    ]
    g2: list[float] = []
    for lag in range(1, min(max_lag, n - 1) + 1):
        numerator = 0.0
        denominator = 0.0
        for t in range(n - lag):
            for p in range(n_pixels):
                numerator += frames[t][p] * frames[t + lag][p]
        for p in range(n_pixels):
            denominator += mean_intensity[p] ** 2
        pairs = (n - lag) * n_pixels
        g2.append((numerator / pairs) / (denominator / n_pixels))
    return g2


def histogram_events(energies: list[float], n_bins: int = 10,
                     lo: float = 0.0, hi: float = 100.0) -> list[int]:
    """A Coffea-style HEP subtask: partial histogram of event energies."""
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    counts = [0] * n_bins
    width = (hi - lo) / n_bins
    for energy in energies:
        if lo <= energy < hi:
            counts[int((energy - lo) / width)] += 1
        elif energy == hi:
            counts[-1] += 1
    return counts
