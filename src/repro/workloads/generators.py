"""Task-arrival generators for the evaluation workloads.

The fault-tolerance experiments launch tasks "at a uniform rate"
(section 5.4); the elasticity experiment submits fixed batches "every 120
seconds" (section 5.3); the scaling experiments submit large concurrent
batches.  These generators produce the corresponding arrival schedules as
lazy iterators (the map machinery depends on iterator laziness, section
4.7 — we keep that idiom everywhere).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class ArrivalEvent:
    """One scheduled task arrival."""

    time: float          # seconds from workload start
    workload: str        # workload/function label
    duration: float      # intended function runtime (sim fabric)
    index: int           # sequence number within the schedule


def uniform_rate_arrivals(
    rate: float,
    total: int,
    workload: str = "task",
    duration: float = 0.0,
    start: float = 0.0,
) -> Iterator[ArrivalEvent]:
    """``total`` arrivals at a uniform ``rate`` per second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    interval = 1.0 / rate
    for i in range(total):
        yield ArrivalEvent(
            time=start + i * interval, workload=workload, duration=duration, index=i
        )


def poisson_arrivals(
    rate: float,
    total: int,
    workload: str = "task",
    duration: float = 0.0,
    start: float = 0.0,
    seed: int | None = None,
) -> Iterator[ArrivalEvent]:
    """``total`` arrivals from a Poisson process of intensity ``rate``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    t = start
    for i in range(total):
        t += rng.expovariate(rate)
        yield ArrivalEvent(time=t, workload=workload, duration=duration, index=i)


def burst_arrivals(
    period: float,
    bursts: int,
    composition: Sequence[tuple[str, int, float]],
    start: float = 0.0,
) -> Iterator[ArrivalEvent]:
    """Periodic bursts, each containing a fixed mix of tasks.

    The figure 6 elasticity workload is
    ``burst_arrivals(120, 3, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)])``:
    every 120 s submit one 1 s, five 10 s, and twenty 20 s functions.

    Parameters
    ----------
    composition:
        Sequence of ``(workload_label, count, duration)`` triples.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if bursts < 0:
        raise ValueError("bursts must be non-negative")
    index = 0
    for b in range(bursts):
        burst_time = start + b * period
        for workload, count, duration in composition:
            if count < 0:
                raise ValueError("composition counts must be non-negative")
            for _ in range(count):
                yield ArrivalEvent(
                    time=burst_time, workload=workload, duration=duration, index=index
                )
                index += 1


def concurrent_batch(
    total: int, workload: str = "task", duration: float = 0.0
) -> Iterator[ArrivalEvent]:
    """All ``total`` tasks arrive at t=0 (the scaling-test workload)."""
    for i in range(total):
        yield ArrivalEvent(time=0.0, workload=workload, duration=duration, index=i)
