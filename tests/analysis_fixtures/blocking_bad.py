# module: fixtures.blocking
# Known-bad corpus for the blocking-under-lock check: channel, queue,
# sleep, and event-wait calls inside a lock scope.
import threading
import time


class Pump:
    def __init__(self, channel, queue):
        self._lock = threading.Lock()
        self.channel = channel
        self.queue = queue
        self.ready = threading.Event()

    def drain(self):
        with self._lock:
            self.channel.send("x")  # EXPECT: blocking-under-lock
            message = self.channel.recv()  # EXPECT: blocking-under-lock
            self.queue.put(message)  # EXPECT: blocking-under-lock
            time.sleep(0.1)  # EXPECT: blocking-under-lock
            self.ready.wait()  # EXPECT: blocking-under-lock
        return message

    def rebalance(self, leases):
        with self._lock:
            for lease in leases:
                self.queue.nack(lease)  # EXPECT: blocking-under-lock
