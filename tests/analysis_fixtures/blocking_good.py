# module: fixtures.blocking
# Known-good corpus for the blocking-under-lock check: the
# snapshot-then-release pattern, condition waits on the lock itself,
# and the dict.get / str.join names that must not be mistaken for
# queue/channel operations.
import threading
import time


class Pump:
    def __init__(self, channel, config):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._buffer = []
        self.channel = channel
        self.config = config

    def drain(self):
        with self._lock:
            pending = list(self._buffer)
            self._buffer.clear()
            retries = self.config.get("retries", 0)
            label = ", ".join(str(p) for p in pending)
        for item in pending:
            self.channel.send(item)
        time.sleep(0)
        return retries, label

    def wait_for_work(self):
        with self._cond:
            self._cond.wait(timeout=0.1)
            self._cond.notify_all()
