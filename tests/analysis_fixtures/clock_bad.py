# module: fixtures.clockdomain
# Known-bad corpus for the clock-domain check: arithmetic and
# comparisons mixing declared monotonic- and wall-domain sources.
import time


class Pacer:
    def __init__(self, clock=None, wall=None):
        self._mono = clock or time.monotonic  # clock-domain: monotonic
        self._wall = wall  # clock-domain: wall

    def skew(self):
        return self._wall() - self._mono()  # EXPECT: clock-domain

    def overdue(self, timeout):
        deadline = self._mono() + timeout  # clock-domain: monotonic
        return self._wall() > deadline  # EXPECT: clock-domain
