# module: fixtures.clockdomain
# Known-good corpus for the clock-domain check: deadline arithmetic
# confined to a single declared domain.
import time


class Pacer:
    def __init__(self, clock=None, wall=None):
        self._mono = clock or time.monotonic  # clock-domain: monotonic
        self._wall = wall  # clock-domain: wall

    def elapsed(self, start):
        return self._mono() - start

    def overdue(self, timeout):
        deadline = self._mono() + timeout  # clock-domain: monotonic
        return self._mono() > deadline

    def wall_stamp(self, offset):
        return self._wall() + offset
