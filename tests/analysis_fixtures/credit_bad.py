# module: fixtures.credit_bad
# Known-bad corpus for the credit-balance check, one case per mode:
# flow-sensitive (the function releases the same ledger but an error
# path skips it) and containment (a ledger that is consumed somewhere
# but released nowhere in the analyzed set).


class CreditLedger:
    def __init__(self, initial=0):
        self.initial = initial

    def consume(self, n):
        return n

    def release(self, n):
        return n


class Window:
    def __init__(self):
        self.credits = CreditLedger(initial=8)

    def dispatch(self, task, ok):
        self.credits.consume(1)  # EXPECT: credit-balance
        if not ok:
            return False  # the consumed credit leaks on the refusal path
        self._send(task)
        self.credits.release(1)
        return True

    def _send(self, task):
        return task


class PoolWindow:
    """Containment mode: nothing in the analyzed set ever releases or
    revokes a ledger spelled ``pool`` — a permanent credit leak."""

    def __init__(self):
        self.pool = CreditLedger(initial=4)

    def take(self):
        return self.pool.consume(1)  # EXPECT: credit-balance
