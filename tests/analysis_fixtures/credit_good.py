# module: fixtures.credit_good
# Known-good corpus for the credit-balance check: release on every
# path, a release via a must-release helper (one-level interprocedural
# summary), the cross-component containment shape (manager consumes,
# worker releases), and the explicit waiver comment.


class CreditLedger:
    def __init__(self, initial=0):
        self.initial = initial

    def consume(self, n):
        return n

    def release(self, n):
        return n


class Window:
    def __init__(self):
        self.credits = CreditLedger(initial=8)

    def dispatch(self, task, ok):
        self.credits.consume(1)
        if not ok:
            self.credits.release(1)  # refusal path returns the credit
            return False
        self._send(task)
        self.credits.release(1)
        return True

    def dispatch_with_abort(self, task, ok):
        self.credits.consume(1)
        if not ok:
            self._abort()  # helper's must-release summary closes the credit
            return False
        self._send(task)
        self.credits.release(1)
        return True

    def drop_with_waiver(self, ok):
        self.credits.consume(1)  # lint: ignore[credit-balance]
        if ok:
            self.credits.release(1)

    def _abort(self):
        self.credits.release(1)

    def _send(self, task):
        return task


class Manager:
    """Containment mode: the release legitimately lives in another
    component (the worker side of the window)."""

    def __init__(self):
        self.credits = CreditLedger(initial=8)

    def dispatch(self, task):
        return self.credits.consume(1)


class Worker:
    def finish(self, manager):
        manager.credits.release(1)
