# module: repro.core.fixture
# Known-bad corpus for the determinism check: direct time/RNG/datetime
# calls in a fabric module.  Parsed, never imported.
import random
import time as _time
from datetime import datetime
from time import monotonic as mono


def stamp():
    return _time.time()  # EXPECT: determinism


def pause():
    _time.sleep(0.1)  # EXPECT: determinism


def jitter():
    return random.random()  # EXPECT: determinism


def pick(items):
    return random.choice(items)  # EXPECT: determinism


def when():
    return datetime.now()  # EXPECT: determinism


def tick():
    return mono()  # EXPECT: determinism


def deep():
    # imports at function scope are tracked too
    import time

    return time.perf_counter()  # EXPECT: determinism
