# module: repro.workloads.fixture
# Workloads model user code and are exempt from the determinism
# boundary: none of these calls may be reported.
import random
import time


def user_function():
    time.sleep(random.random() * 0.01)
    return time.time()
