# module: repro.core.fixture
# Known-good corpus for the determinism check: the injectable-boundary
# conventions this repo uses.  No findings expected.
import random
import time


class Poller:
    def __init__(self, clock=None, sleeper=None, seed=0):
        # bare references as defaults ARE the boundary (not calls)
        self._clock = clock or time.monotonic
        self._sleep = sleeper or time.sleep
        # constructing a seeded RNG is the allowed entry point
        self._rng = random.Random(seed)

    def poll(self):
        start = self._clock()
        self._sleep(0.01)
        return self._clock() - start, self._rng.random()


def wall_timestamp():
    # explicit, reviewed waiver: artifact filenames want wall time
    return time.time()  # lint: ignore[determinism]
