# module: fixtures.future_bad
# Known-bad corpus for the future-resolution check: created futures
# that can reach the function exit unresolved and unowned — the waiter
# blocks forever.


class FuncXFuture:
    def __init__(self, task_id):
        self.task_id = task_id


class Client:
    def resolve_some_paths(self, task_id, value, ok):
        future = FuncXFuture(task_id)  # EXPECT: future-resolution
        if ok:
            future.set_result(value)
        # the else branch forgets the future: its waiter blocks forever

    def forgets_on_refusal(self, task_id, value, refused):
        future = FuncXFuture(task_id)  # EXPECT: future-resolution
        if refused:
            return None  # dropped unresolved (no raise, so no waiver)
        future.set_result(value)
        return future
