# module: fixtures.future_good
# Known-good corpus for the future-resolution check: resolution on
# every branch, the escape waivers (return, store, hand off), and the
# raise waiver (an unresolved local future is garbage-collectable).


class FuncXFuture:
    def __init__(self, task_id):
        self.task_id = task_id


class Client:
    def __init__(self):
        self._futures = {}
        self.closed = False

    def resolve_every_branch(self, task_id, value, error):
        future = FuncXFuture(task_id)
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)
        return None

    def escape_by_return(self, task_id):
        future = FuncXFuture(task_id)
        return future

    def escape_to_field(self, task_id):
        self._futures[task_id] = FuncXFuture(task_id)  # resolver owns it

    def escape_by_handoff(self, task_id, resolver):
        future = FuncXFuture(task_id)
        resolver.adopt(future)  # callee resolves it

    def raise_waiver(self, task_id, value):
        future = FuncXFuture(task_id)
        if self.closed:
            raise RuntimeError("client closed")  # waived: collectable
        future.set_result(value)
        return future

    def cancelled_path(self, task_id, abandoned):
        future = FuncXFuture(task_id)
        if abandoned:
            future.cancel()
            return None
        return future
