# module: fixtures.guarded
# Known-bad corpus for the guarded-by check: every line marked EXPECT
# must be reported, nothing else.  This file is parsed, never imported.
import threading
from collections import deque


class Dispatcher:
    _GUARDED = {"_assigned": "_lock"}  # lint: ignore[threadroles]

    def __init__(self):
        self._lock = threading.RLock()
        self._assigned = {}
        self._pending = deque()  # guarded-by: self._lock  # lint: ignore[threadroles]

    def backlog(self):
        return len(self._pending)  # EXPECT: guarded-by

    def assign(self, task_id, worker):
        self._assigned[task_id] = worker  # EXPECT: guarded-by

    def flush(self):
        with self._lock:
            export = lambda: list(self._pending)  # EXPECT: guarded-by
        return export

    def requeue(self, task_id):
        with self._lock:
            worker = self._assigned.pop(task_id, None)
        self._pending.append((task_id, worker))  # EXPECT: guarded-by

    def reset(self):
        del self._assigned  # EXPECT: guarded-by

    def bump(self, task_id):
        self._assigned[task_id] += 1  # EXPECT: guarded-by
