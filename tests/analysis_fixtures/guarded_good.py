# module: fixtures.guarded
# Known-good corpus for the guarded-by check: no findings expected.
# Exercises with-scopes (early returns, nesting), held-marker methods,
# __init__ exemption, and snapshot-then-release.
import threading
from collections import deque


class Dispatcher:
    _GUARDED = {"_assigned": "_lock"}  # lint: ignore[threadroles]

    def __init__(self):
        self._lock = threading.RLock()
        self._assigned = {}
        self._pending = deque()  # guarded-by: self._lock  # lint: ignore[threadroles]

    def backlog(self):
        with self._lock:
            if not self._pending:
                return 0
            return len(self._pending)

    def reassign(self, task_id, worker):
        with self._lock:
            with self._lock:
                self._assigned[task_id] = worker

    def _count_locked(self):  # guarded-by: self._lock
        return len(self._assigned) + len(self._pending)

    def snapshot(self):
        with self._lock:
            pending = list(self._pending)
        return pending

    def drain(self):
        with self._lock:
            items, self._pending = list(self._pending), deque()
        return items

    def reset(self):
        with self._lock:
            del self._assigned

    def bump(self, task_id):
        with self._lock:
            self._assigned[task_id] += 1
