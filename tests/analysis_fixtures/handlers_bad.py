# module: repro.transport.messages
# Known-bad corpus for the handler-exhaustiveness check: the analyzed
# set has a dispatch layer (PingMessage is consumed), but PongMessage
# is never matched by any isinstance/match arm — it would be silently
# dropped by every step() loop at runtime.
from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    sender: str  # seed field: exempt from the default requirement


@dataclass(frozen=True)
class PingMessage(Message):
    payload: str = ""


@dataclass(frozen=True)
class PongMessage(Message):  # EXPECT: handler-exhaustiveness
    payload: str = ""


def dispatch(message):
    if isinstance(message, PingMessage):
        return message.payload
    return None
