# module: repro.transport.messages
# Known-good corpus for the handler-exhaustiveness check: every
# concrete wire type is consumed by a dispatch arm — one via
# isinstance (tuple form), one via match-case.
from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    sender: str  # seed field: exempt from the default requirement


@dataclass(frozen=True)
class PingMessage(Message):
    payload: str = ""


@dataclass(frozen=True)
class PongMessage(Message):
    payload: str = ""


@dataclass(frozen=True)
class AckMessage(Message):
    task_id: str = ""


def dispatch(message):
    if isinstance(message, (PingMessage, PongMessage)):
        return message.payload
    match message:
        case AckMessage():
            return message.task_id
    return None
