# module: fixtures.lease
# Known-bad corpus for the lease-ack check: leases that can reach the
# function exit un-acked — early returns, raise paths, and loops that
# consume a batch without disposing the elements.  Findings anchor on
# the acquisition line.
from collections import deque


class Dispatcher:
    def drop_on_early_return(self, queue, flag):
        lease = queue.lease(0.1)  # EXPECT: lease-ack
        if lease is None:
            return 0
        if flag:
            return 1  # leaks the lease on this path
        queue.ack(lease.lease_id)
        return 1

    def leak_on_raise(self, queue):
        lease = queue.lease(0.1)  # EXPECT: lease-ack
        if lease is None:
            return
        if lease.deliveries > 3:
            raise RuntimeError("poison task")  # lease never disposed
        queue.ack(lease.lease_id)

    def count_without_ack(self, queue):
        total = 0
        for lease in queue.lease_many(8):  # EXPECT: lease-ack
            total += 1  # element never acked, nacked, or handed off
        return total

    def batch_leaks_in_flight(self, queue):
        pending = deque(queue.lease_many(8))  # EXPECT: lease-ack
        while pending:
            lease = pending.popleft()
            if lease.deliveries > 3:
                break  # drained flag never set; rest of batch leaks
            queue.ack(lease.lease_id)
