# module: fixtures.lease
# Known-good corpus for the lease-ack check: ack/nack on every path,
# drained batch loops, and the three escape waivers (store into a
# field/container, return the lease, pass it to another call).
from collections import deque


class Dispatcher:
    def __init__(self):
        self._open = {}

    def ack_or_nack_every_path(self, queue, flag):
        lease = queue.lease(0.1)
        if lease is None:
            return 0
        if flag:
            queue.nack(lease.lease_id)
            return 0
        queue.ack(lease.lease_id)
        return 1

    def drain_batch(self, queue):
        pending = deque(queue.lease_many(8))
        while pending:
            lease = pending.popleft()
            queue.ack(lease.lease_id)
        return True

    def escape_to_field(self, queue):
        lease = queue.lease(0.1)
        if lease is not None:
            self._open[lease.item] = lease  # caller's reclaim loop owns it now

    def escape_by_return(self, queue):
        lease = queue.lease(0.1)
        return lease

    def escape_by_handoff(self, queue, agent):
        for lease in queue.lease_many(4):
            agent.dispatch(queue, lease)  # callee owns disposal

    def deliberate_drop(self, queue):
        lease = queue.lease(0.1)  # lint: ignore[lease-ack]
        del lease  # waived: intentionally dropped for the test double
