# module: fixtures.lockorder
# Known-bad corpus for the lock-order check: two classes that acquire
# each other's locks in opposite orders — the classic ABBA deadlock.
# The cycle is reported once, anchored on the first witness edge.
import threading


class Left:
    def __init__(self, right: Right):
        self._lock = threading.Lock()
        self.right = right

    def poke(self):
        with self._lock:
            with self.right._peer_lock:  # EXPECT: lock-order
                return self.right.depth


class Right:
    def __init__(self):
        self._peer_lock = threading.Lock()
        self.left = None
        self.depth = 0

    def attach(self, left: Left):
        self.left = left

    def poke(self):
        with self._peer_lock:
            with self.left._lock:  # opposite order: Right then Left
                self.depth += 1
