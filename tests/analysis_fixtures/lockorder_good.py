# module: fixtures.lockorder
# Known-good corpus for the lock-order check: every code path acquires
# the two locks in the same global order (Outer before Inner), including
# the multi-item `with a, b:` form, which acquires left-to-right.
import threading


class Outer:
    def __init__(self, inner: Inner):
        self._lock = threading.Lock()
        self.inner = inner

    def nested(self):
        with self._lock:
            with self.inner._pool_lock:
                return self.inner.size

    def multi_item(self):
        # `with a, b:` acquires a then b — same order as nested().
        with self._lock, self.inner._pool_lock:
            return self.inner.size

    def reentrant(self):
        with self._lock:
            with self._lock:  # same lock: RLock re-entry, not an edge
                return True


class Inner:
    def __init__(self):
        self._pool_lock = threading.Lock()
        self.size = 0

    def grow(self):
        with self._pool_lock:
            self.size += 1
