# module: fixtures.lockscope
# Pins lockscope.py edge cases, bad side: a deferred generator
# expression escapes the lock scope (its element expression runs at
# consumption time, after release — same closure hazard as a lambda),
# and guarded access in an async method still needs the lock.
import threading


class Table:
    _GUARDED = {"_rows": "_lock"}  # lint: ignore[threadroles]

    def __init__(self):
        self._lock = threading.Lock()
        self._rows = {}

    def deferred_genexp(self, keys):
        with self._lock:
            rows = (self._rows[k] for k in keys)  # EXPECT: guarded-by
        return list(rows)  # consumed after the lock is released

    async def async_unlocked(self):
        return len(self._rows)  # EXPECT: guarded-by
