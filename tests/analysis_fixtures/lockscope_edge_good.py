# module: fixtures.lockscope
# Pins lockscope.py edge cases, good side: multi-item `with a, b:`
# accumulates both locks left-to-right, `async with` guards like the
# sync form, eager list comprehensions evaluate in place (under the
# lock), and a generator expression's *outermost iterable* is evaluated
# eagerly so touching the guarded attribute there is fine.
import threading


class Table:
    _GUARDED = {"_rows": "_lock"}  # lint: ignore[threadroles]

    def __init__(self):
        self._lock = threading.Lock()
        self._aux = threading.Lock()
        self._rows = {}

    def multi_item_with(self):
        with self._lock, self._aux:
            return len(self._rows)

    async def async_with(self):
        async with self._lock:
            return len(self._rows)

    def eager_comprehension(self):
        with self._lock:
            return [self._rows[k] for k in self._rows]

    def eager_genexp_iterable(self):
        with self._lock:
            total = sum(1 for _ in self._rows)
        return total
