# module: fixtures.span
# Known-bad corpus for the span-lifecycle check: a span begun but not
# finished on every path through the function, and a span name that is
# never ended anywhere in its class.


class Pipeline:
    def step(self, message, flag):
        message.trace.begin("manager", "manager")  # EXPECT: span-lifecycle
        if flag:
            return None  # leaves the "manager" span open
        message.trace.end("manager")
        return message

    def orphan_stage(self, message):
        message.trace.begin("stage", "manager")  # EXPECT: span-lifecycle
        return message  # no .end("stage") anywhere in Pipeline
