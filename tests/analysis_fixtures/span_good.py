# module: fixtures.span
# Known-good corpus for the span-lifecycle check: finally-closed spans,
# the cross-method begin/end pairing the agent and manager use, and
# one-shot record() stages.


class Pipeline:
    def step(self, message):
        message.trace.begin("manager", "manager")
        try:
            self._work(message)
        finally:
            message.trace.end("manager")
        return message

    def branch_closes_both_ways(self, message, flag):
        message.trace.begin("dispatch", "manager")
        if flag:
            message.trace.end("dispatch", dropped=True)
            return None
        message.trace.end("dispatch")
        return message

    def open_crossing_methods(self, message):
        # The fabric's normal shape: dispatch begins, completion ends.
        message.trace.begin("agent", "agent")
        return message

    def close_crossing_methods(self, message):
        message.trace.end("agent")
        return message

    def one_shot(self, message):
        message.trace.record("worker", "worker", start=0.0, end=1.0)
        return message

    def _work(self, message):
        return message
