# module: fixtures.spill_bad
# Known-bad corpus for the spill-lifecycle check: spilled DataRefs
# that reach the function exit neither deleted nor handed off — the
# staging store grows one payload per undelivered result.


class Server:
    def spill_then_forget(self, key, payload, deliverable):
        ref = self.spill.put(key, payload)  # EXPECT: spill-lifecycle
        if not deliverable:
            return None  # undelivered payload stays in the staging store
        return ref

    def spill_then_raise(self, key, payload):
        ref = self.spill.put(key, payload)  # EXPECT: spill-lifecycle
        if len(payload) > 64:
            raise ValueError("oversized payload")  # spilled payload leaks
        return ref
