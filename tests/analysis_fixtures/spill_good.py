# module: fixtures.spill_good
# Known-good corpus for the spill-lifecycle check: deletion on the
# undeliverable path, conversion for delivery (as_argument handoff),
# and the escape waivers (store the ref, return it, pass it onward).


class Server:
    def __init__(self):
        self.pending = {}

    def spill_and_deliver(self, key, payload, deliverable):
        ref = self.spill.put(key, payload)
        if not deliverable:
            self.spill.delete(ref.key)  # undeliverable payload is dropped
            return None
        return ref

    def spill_for_wire(self, key, payload):
        ref = self.spill.put(key, payload)
        return ref.as_argument()  # converted for delivery

    def escape_to_field(self, key, payload):
        self.pending[key] = self.spill.put(key, payload)  # ack path owns it

    def escape_by_handoff(self, key, payload, batch):
        ref = self.spill.put(key, payload)
        batch.append(ref)  # the batch's ack/detach path owns disposal
