# module: fixtures.subscription_bad
# Known-bad corpus for the subscription-lifecycle check: tokens that
# can reach the function exit without unsubscribe/detach — the raise
# path (the PR 7 _future_for leak class) and the early return.


class Client:
    def __init__(self):
        self.ready = False

    def leak_on_raise(self, pubsub, topic, callback):
        token = pubsub.subscribe(topic, callback)  # EXPECT: subscription-lifecycle
        if not self.ready:
            raise RuntimeError("not ready")  # token delivers into a dead callback forever
        pubsub.unsubscribe(token)

    def leak_on_early_return(self, pubsub, prefix, callback, armed):
        token = pubsub.subscribe_prefix(prefix, callback)  # EXPECT: subscription-lifecycle
        if not armed:
            return None  # leaks the token
        pubsub.unsubscribe(token)
        return None
