# module: fixtures.subscription_good
# Known-good corpus for the subscription-lifecycle check: unsubscribe
# on every path (the error-handler shape the PR 7 _future_for fix
# uses), the escape waivers (store into a field, return the token,
# hand it to another call), and a stream subscription closed via its
# own method.


class Client:
    def __init__(self):
        self._tokens = {}

    def unsubscribe_every_path(self, pubsub, topic, callback, armed):
        token = pubsub.subscribe(topic, callback)
        if not armed:
            pubsub.unsubscribe(token)  # refusal path releases the token
            return False
        pubsub.unsubscribe(token)
        return True

    def unsubscribe_in_error_handler(self, pubsub, topic, callback):
        token = pubsub.subscribe(topic, callback)
        try:
            self._arm(topic)
        except BaseException:
            pubsub.unsubscribe(token)  # nothing above may leak the token
            raise
        return token

    def escape_to_field(self, pubsub, topic, callback):
        token = pubsub.subscribe(topic, callback)
        self._tokens[topic] = token  # caller's teardown owns it now

    def escape_by_return(self, pubsub, topic, callback):
        token = pubsub.subscribe(topic, callback)
        return token

    def escape_by_handoff(self, pubsub, topic, callback, registry):
        token = pubsub.subscribe(topic, callback)
        registry.adopt(token)  # callee owns disposal

    def close_stream_subscription(self, stream, consumer, ok):
        subscription = stream.subscribe(consumer)
        if not ok:
            subscription.close()  # receiver-based release
            return None
        subscription.detach()
        return None

    def _arm(self, topic):
        return topic
