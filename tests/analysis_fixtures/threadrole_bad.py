# module: fixtures.threadrole
# Known-bad corpus for the thread-role inference pass: every line marked
# EXPECT must be reported, nothing else.  This file is parsed, never
# imported.
#
# ``Pipeline.processed`` is written by the spawned worker loop *and* the
# main-role ``nudge`` with no lock in common and no guarded-by
# annotation — the sufficiency direction (error), anchored at the
# first write site.  ``Stale._tally`` is annotated guarded-by but only
# role main ever touches it — the necessity direction (info), anchored
# at the declaration.  ``Escaping.fired`` is written from the callback
# role (the bound-method reference escapes into a registry) and from
# main — a cross-role race no spawn site would reveal.
import threading


class Pipeline:
    def __init__(self):
        self._thread = None
        self.processed = 0

    def start(self):
        self._thread = threading.Thread(target=self._run, name="worker-0")
        self._thread.start()

    def _run(self):
        self.processed += 1  # EXPECT: threadroles

    def nudge(self):
        self.processed += 1


class Stale:
    def __init__(self):
        self._lock = threading.Lock()
        self._tally = 0  # guarded-by: self._lock  # EXPECT: threadroles

    def bump(self):
        with self._lock:
            self._tally += 1


class Escaping:
    def __init__(self, registry):
        self.fired = 0
        registry.add_listener(self._on_event)

    def _on_event(self, message):
        self.fired += 1  # EXPECT: threadroles

    def reset(self):
        self.fired = 0
