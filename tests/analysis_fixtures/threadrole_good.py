# module: fixtures.threadrole
# Known-good corpus for the thread-role inference pass: the same
# cross-role shapes as threadrole_bad.py, each made safe the way the
# pass understands — a common lock with a guarded-by annotation, a
# ``# thread-confined:`` publish-before-start waiver, and ``# handoff``
# queue-transfer waivers.  Must produce no findings.
import threading


class LockedPipeline:
    """Cross-role writes, but every writer holds the declared lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.processed = 0  # guarded-by: self._lock

    def start(self):
        self._thread = threading.Thread(target=self._run, name="worker-0")
        self._thread.start()

    def _run(self):
        with self._lock:
            self.processed += 1

    def nudge(self):
        with self._lock:
            self.processed += 1


class Confined:
    """Publish-before-start: main seeds the counter before the loop
    thread exists; afterwards only the worker touches it."""

    def __init__(self):
        self._thread = None
        self.ticks = 0  # thread-confined: worker

    def start(self):
        self.ticks = 0
        self._thread = threading.Thread(target=self._loop, name="worker-1")
        self._thread.start()

    def _loop(self):
        self.ticks += 1


class Handoff:
    """Queue-transfer: the record is owned by exactly one stage at a
    time; the transfer mechanism provides the happens-before edge."""

    def __init__(self):
        self._thread = None
        self.stage = "new"

    def start(self):
        self._thread = threading.Thread(target=self._consume,
                                        name="manager-a")
        self._thread.start()

    def advance(self):
        self.stage = "queued"  # handoff

    def _consume(self):
        self.stage = "done"  # handoff


class LockedCallback:
    """An escaping bound method (callback role) that shares state with
    main under the declared lock."""

    def __init__(self, registry):
        self._lock = threading.Lock()
        self.fired = 0  # guarded-by: self._lock
        registry.add_listener(self._on_event)

    def _on_event(self, message):
        with self._lock:
            self.fired += 1

    def reset(self):
        with self._lock:
            self.fired = 0


class ShardLike:
    """One partition: its state is only touched under the declared lock,
    from the spawning role and from the per-shard worker thread."""

    def __init__(self, index):
        self.index = index
        self._lock = threading.Lock()
        self.handled = 0  # guarded-by: self._lock

    def run(self):
        with self._lock:
            self.handled += 1

    def poke(self):
        with self._lock:
            self.handled += 1


class ShardedPlane:
    """Parameterized spawn site: one thread per shard, spawned in a loop
    over a typed container.  The pass must type the loop variable from
    the ``list[ShardLike]`` annotation, resolve ``shard.run`` as the
    spawn target, and take the role from the f-string name's literal
    stem (``worker-``)."""

    def __init__(self, count):
        self.shards: list[ShardLike] = [ShardLike(i) for i in range(count)]
        self._threads = []

    def start(self):
        for shard in self.shards:
            thread = threading.Thread(target=shard.run,
                                      name=f"worker-{shard.index}")
            self._threads.append(thread)
            thread.start()

    def poke_all(self):
        for shard in self.shards:
            shard.poke()
