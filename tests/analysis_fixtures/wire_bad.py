# module: repro.transport.messages
# Known-bad corpus for the wire-compat check.  Parsed, never imported
# (the field-ordering error would fail at class creation, which is fine:
# the analyzer must catch it before any code runs).
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class BadMessage:
    sender: str = ""
    handler: object = None  # EXPECT: wire-compat
    callbacks: list[Callable] = field(default_factory=list)  # EXPECT: wire-compat
    deadline: float  # EXPECT: wire-compat
    payload: Any = None
