# module: repro.transport.messages
# Known-good corpus for the wire-compat check: serializer-safe types,
# defaults on post-seed fields, the seed exemption (Message.sender), a
# quoted forward reference, and ClassVar pass-through.
from dataclasses import dataclass, field
from typing import Any, ClassVar


@dataclass(frozen=True)
class Message:
    sender: str  # seed field: exempt from the default requirement
    kind: ClassVar[str] = "message"


@dataclass(frozen=True)
class GoodTask(Message):
    task_id: str = ""
    payload: bytes = b""
    retries: int | None = None
    labels: dict[str, str] = field(default_factory=dict)
    shape: tuple[int, ...] = ()
    extra: Any = None
    trace: "TraceContext | None" = field(default=None, compare=False)
