"""Shared test fixtures."""

from __future__ import annotations

import pytest


class FakeClock:
    """A manually-advanced clock for deterministic time-dependent tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot go backwards")
        self.now += seconds
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()
