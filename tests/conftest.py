"""Shared test fixtures."""

from __future__ import annotations

import pytest


class FakeClock:
    """A manually-advanced clock for deterministic time-dependent tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot go backwards")
        self.now += seconds
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def chaos_world():
    """A factory for instrumented chaos deployments (closed on teardown).

    Usage::

        def test_something(chaos_world):
            world = chaos_world(seed=7)
            world.add_endpoint("ep")
            ...
    """
    from repro.chaos import ChaosWorld

    worlds = []

    def factory(seed: int = 0, **kwargs) -> ChaosWorld:
        world = ChaosWorld(seed=seed, **kwargs)
        worlds.append(world)
        return world

    yield factory
    for world in worlds:
        world.close()
