"""Unit and integration tests for usage accounting."""

from __future__ import annotations

import pytest

from repro import LocalDeployment
from repro.accounting import AllocationBudget, UsageLedger, UsageRecord


class TestUsageRecord:
    def test_charge_success(self):
        record = UsageRecord()
        record.charge(1.5, failed=False, memo=False)
        assert record.invocations == 1
        assert record.execution_seconds == 1.5
        assert record.success_rate == 1.0

    def test_charge_failure(self):
        record = UsageRecord()
        record.charge(0.0, failed=True, memo=False)
        record.charge(1.0, failed=False, memo=False)
        assert record.failures == 1
        assert record.success_rate == 0.5

    def test_memo_hit_not_billed_execution(self):
        record = UsageRecord()
        record.charge(99.0, failed=False, memo=True)
        assert record.memo_hits == 1
        assert record.execution_seconds == 0.0

    def test_empty_success_rate(self):
        assert UsageRecord().success_rate == 1.0


class TestLedgerCharging:
    def test_charges_all_dimensions(self):
        ledger = UsageLedger()
        ledger.charge("alice", "fn-1", "ep-1", 2.0)
        ledger.charge("alice", "fn-2", "ep-1", 3.0)
        ledger.charge("bob", "fn-1", "ep-2", 1.0)
        assert ledger.user_usage("alice").execution_seconds == 5.0
        assert ledger.user_usage("alice").invocations == 2
        assert ledger.function_usage("fn-1").invocations == 2
        assert ledger.endpoint_usage("ep-1").execution_seconds == 5.0

    def test_unknown_keys_are_zero(self):
        ledger = UsageLedger()
        assert ledger.user_usage("ghost").invocations == 0

    def test_top_users(self):
        ledger = UsageLedger()
        ledger.charge("light", "f", "e", 1.0)
        ledger.charge("heavy", "f", "e", 10.0)
        top = ledger.top_users(1)
        assert top[0][0] == "heavy"

    def test_statement_contains_users(self):
        ledger = UsageLedger()
        ledger.charge("alice", "fn-1", "ep-1", 1.0)
        text = ledger.statement()
        assert "alice" in text and "per endpoint" in text


class TestAllocations:
    def test_budget_accrual(self):
        ledger = UsageLedger()
        budget = ledger.set_allocation("ep-1", core_seconds=10.0)
        ledger.charge("a", "f", "ep-1", 4.0)
        assert budget.used_core_seconds == 4.0
        assert budget.remaining == 6.0
        assert not budget.exhausted
        ledger.charge("a", "f", "ep-1", 7.0)
        assert budget.exhausted

    def test_memo_hits_free(self):
        ledger = UsageLedger()
        budget = ledger.set_allocation("ep-1", core_seconds=10.0)
        ledger.charge("a", "f", "ep-1", 5.0, memo_hit=True)
        assert budget.used_core_seconds == 0.0

    def test_other_endpoints_not_billed(self):
        ledger = UsageLedger()
        budget = ledger.set_allocation("ep-1", core_seconds=10.0)
        ledger.charge("a", "f", "ep-2", 5.0)
        assert budget.used_core_seconds == 0.0

    def test_allocation_lookup(self):
        ledger = UsageLedger()
        assert ledger.allocation("none") is None
        ledger.set_allocation("e", 1.0)
        assert isinstance(ledger.allocation("e"), AllocationBudget)


class TestLiveIntegration:
    def test_ledger_tracks_live_tasks(self):
        with LocalDeployment() as dep:
            ledger = UsageLedger()
            ledger.attach(dep.service)
            client = dep.client("alice")
            ep = dep.create_endpoint("billed-ep", nodes=1)

            def work(x):
                import time

                time.sleep(0.05)
                return x

            fid = client.register_function(work)
            futures = [client.submit(fid, ep, i) for i in range(4)]
            for f in futures:
                f.result(timeout=30)
            usage = ledger.user_usage(client.identity.identity_id)
            assert usage.invocations == 4
            assert usage.execution_seconds >= 4 * 0.05
            assert ledger.function_usage(fid).invocations == 4
            assert ledger.endpoint_usage(ep).invocations == 4
            ledger.detach()

    def test_failures_counted(self):
        with LocalDeployment() as dep:
            ledger = UsageLedger()
            ledger.attach(dep.service)
            client = dep.client("alice")
            ep = dep.create_endpoint("billed-ep", nodes=1)

            def bad():
                raise RuntimeError("no")

            fid = client.register_function(bad)
            future = client.submit(fid, ep)
            with pytest.raises(RuntimeError):
                future.result(timeout=30)
            usage = ledger.user_usage(client.identity.identity_id)
            assert usage.failures == 1

    def test_double_attach_rejected(self):
        with LocalDeployment() as dep:
            ledger = UsageLedger()
            ledger.attach(dep.service)
            with pytest.raises(RuntimeError):
                ledger.attach(dep.service)
            ledger.detach()
            ledger.attach(dep.service)  # re-attach after detach is fine
            ledger.detach()
