"""Per-tenant admission control: token buckets, quotas, strict mode.

Unit tests for :mod:`repro.core.admission` plus its integration with
the service facade (quota returned on completion/cancel/forget,
batch all-or-nothing semantics, tenant metrics).
"""

from __future__ import annotations

import math

import pytest

from repro.auth import AuthService
from repro.core.admission import AdmissionController, TenantPolicy
from repro.core.service import FuncXService, ServiceConfig
from repro.errors import ThrottleExceeded, UnknownTenant
from repro.metrics.registry import MetricsRegistry
from repro.serialize import FuncXSerializer


class TestTenantPolicy:
    def test_defaults_are_unlimited(self):
        policy = TenantPolicy()
        assert math.isinf(policy.rate) and math.isinf(policy.burst)
        assert policy.max_outstanding is None
        assert policy.weight == 1.0

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0},
        {"rate": -1.0},
        {"burst": 0.0},
        {"max_outstanding": 0},
        {"weight": 0.0},
    ])
    def test_invalid_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantPolicy(**kwargs)


class TestTokenBucket:
    def test_burst_then_throttle(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=1.0, burst=3.0))
        for _ in range(3):
            ctl.admit("t")
        with pytest.raises(ThrottleExceeded) as exc_info:
            ctl.admit("t")
        assert exc_info.value.tenant == "t"
        assert "rate limit" in str(exc_info.value)

    def test_refill_restores_allowance(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=2.0, burst=2.0))
        ctl.admit("t", count=2)
        with pytest.raises(ThrottleExceeded):
            ctl.admit("t")
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        ctl.admit("t")
        with pytest.raises(ThrottleExceeded):
            ctl.admit("t")

    def test_refill_caps_at_burst(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=100.0, burst=2.0))
        ctl.admit("t", count=2)
        clock.advance(60.0)  # would refill 6000 tokens; capped at burst
        ctl.admit("t", count=2)
        with pytest.raises(ThrottleExceeded):
            ctl.admit("t")

    def test_retry_after_names_the_shortfall(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=2.0, burst=4.0))
        ctl.admit("t", count=4)
        with pytest.raises(ThrottleExceeded) as exc_info:
            ctl.admit("t", count=3)
        # 3 tokens short at 2 tokens/s -> 1.5s
        assert exc_info.value.retry_after == pytest.approx(1.5)
        assert "retry after" in str(exc_info.value)

    def test_batch_is_all_or_nothing(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=1.0, burst=5.0))
        with pytest.raises(ThrottleExceeded):
            ctl.admit("t", count=6)
        # the failed batch consumed nothing
        ctl.admit("t", count=5)


class TestQuota:
    def test_max_outstanding_blocks_and_release_restores(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(max_outstanding=2))
        ctl.admit("t", count=2)
        with pytest.raises(ThrottleExceeded) as exc_info:
            ctl.admit("t")
        assert "quota" in str(exc_info.value)
        assert ctl.outstanding("t") == 2
        ctl.release("t")
        ctl.admit("t")

    def test_release_never_goes_negative(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.release("t", count=5)
        assert ctl.outstanding("t") == 0
        ctl.set_policy("t", TenantPolicy(max_outstanding=1))
        ctl.admit("t")
        ctl.release("t", count=99)
        assert ctl.outstanding("t") == 0


class TestStrictMode:
    def test_unknown_tenant_rejected(self, clock):
        ctl = AdmissionController(strict=True, clock=clock)
        ctl.set_policy("known", TenantPolicy())
        ctl.admit("known")
        with pytest.raises(UnknownTenant) as exc_info:
            ctl.admit("stranger")
        assert exc_info.value.tenant == "stranger"

    def test_permissive_default_admits_anyone(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.admit("anyone", count=1000)

    def test_weight_for_never_raises(self, clock):
        ctl = AdmissionController(strict=True, clock=clock)
        ctl.set_policy("heavy", TenantPolicy(weight=4.0))
        assert ctl.weight_for("heavy") == 4.0
        assert ctl.weight_for("stranger") == 1.0  # default, no raise


class TestMetricsAndSnapshot:
    def test_admission_metrics_emitted(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.metrics = registry = MetricsRegistry(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=1.0, burst=1.0, max_outstanding=5))
        ctl.admit("t")
        with pytest.raises(ThrottleExceeded):
            ctl.admit("t")
        assert registry.value("tenant.admitted", tenant="t") == 1
        assert registry.value("tenant.throttled", tenant="t", reason="rate") == 1
        assert registry.value("tenant.outstanding", tenant="t") == 1
        ctl.release("t")
        assert registry.value("tenant.outstanding", tenant="t") == 0

    def test_snapshot_reports_buckets(self, clock):
        ctl = AdmissionController(clock=clock)
        ctl.set_policy("t", TenantPolicy(rate=1.0, burst=4.0))
        ctl.admit("t", count=3)
        snap = ctl.snapshot()
        assert snap["t"]["tokens"] == pytest.approx(1.0)
        assert snap["t"]["outstanding"] == 3


# ----------------------------------------------------------------------
# integration with the facade
# ----------------------------------------------------------------------
class TestServiceIntegration:
    @staticmethod
    def _service(clock, admission=None):
        return FuncXService(
            auth=AuthService(clock=clock),
            config=ServiceConfig(),
            clock=clock,
            admission=admission,
        )

    @staticmethod
    def _setup(service):
        identity = service.auth.register_identity("tenant")
        token = service.auth.native_client_flow(identity).token
        serializer = FuncXSerializer()
        fid = service.register_function(
            token, "noop", serializer.serialize_function(lambda x: x),
            public=True)
        _eident, etok = service.auth.endpoint_client_flow("ep")
        ep = service.register_endpoint(etok.token, name="ep")
        payload = serializer.serialize(([1], {}))
        return identity, token, fid, ep, payload

    def test_quota_returned_on_every_terminal_path(self, clock):
        admission = AdmissionController(clock=clock)
        service = self._service(clock, admission)
        identity, token, fid, ep, payload = self._setup(service)
        admission.set_policy(identity.identity_id,
                             TenantPolicy(max_outstanding=3))

        completed = service.submit(token, fid, ep, payload)
        cancelled = service.submit(token, fid, ep, payload)
        forgotten = service.submit(token, fid, ep, payload)
        with pytest.raises(ThrottleExceeded):
            service.submit(token, fid, ep, payload)

        service.complete_task(completed, success=True, result_buffer=b"r")
        assert admission.outstanding(identity.identity_id) == 2
        service.cancel_task(token, cancelled)
        assert admission.outstanding(identity.identity_id) == 1
        service.forget_task(forgotten)
        assert admission.outstanding(identity.identity_id) == 0
        # full allowance restored
        for _ in range(3):
            service.submit(token, fid, ep, payload)

    def test_rejected_batch_consumes_no_quota(self, clock):
        admission = AdmissionController(clock=clock)
        service = self._service(clock, admission)
        identity, token, fid, ep, payload = self._setup(service)
        admission.set_policy(identity.identity_id,
                             TenantPolicy(max_outstanding=2))
        with pytest.raises(ThrottleExceeded):
            service.submit_batch(token, [(fid, ep, payload)] * 3)
        assert admission.outstanding(identity.identity_id) == 0
        assert service.tasks_received == 0
        assert service.submit_batch(token, [(fid, ep, payload)] * 2)

    def test_queue_lanes_carry_tenant_identity(self, clock):
        service = self._service(clock)
        identity, token, fid, ep, payload = self._setup(service)
        service.submit(token, fid, ep, payload)
        lease = service.task_queue(ep).lease()
        assert lease is not None
        assert lease.lane == identity.identity_id
