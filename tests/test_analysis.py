"""Tier-1 gate and unit tests for the ``repro.analysis`` static analyzer.

Three layers:

* the fixture corpus under ``tests/analysis_fixtures/`` — every line
  marked ``# EXPECT: <check-id>`` must be reported, and nothing else;
* regression tests that re-introduce the historical bugs the analyzer
  exists to catch (the unlocked ``Manager._pending`` access, a raw
  ``time.time()`` in ``repro.core``) and assert they are flagged;
* the gate itself: ``src/`` must analyze clean against the committed
  baseline, and the baseline must carry no stale entries.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_source, run_analysis
from repro.analysis.runner import ALL_CHECKS, GLOBAL_CHECKS
from repro.analysis.source import parse_source
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

_MODULE_RE = re.compile(r"^#\s*module:\s*(\S+)", re.MULTILINE)
_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([a-z-]+)")


def _load_fixture(name: str):
    text = (FIXTURES / name).read_text(encoding="utf-8")
    match = _MODULE_RE.search(text)
    assert match, f"fixture {name} must declare '# module: ...'"
    return parse_source(text, path=f"tests/analysis_fixtures/{name}",
                        module=match.group(1))


def _expected_markers(source) -> set[tuple[str, int]]:
    expected = set()
    for lineno, line in enumerate(source.lines, start=1):
        for check in _EXPECT_RE.findall(line):
            expected.add((check, lineno))
    return expected


# ----------------------------------------------------------------------
# fixture corpus: bad fixtures report exactly their EXPECT markers,
# good fixtures report nothing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(p.name for p in FIXTURES.glob("*.py")))
def test_fixture_corpus(name):
    source = _load_fixture(name)
    expected = _expected_markers(source)
    got = {(f.check, f.line) for f in analyze_source(source)}
    assert got == expected, (
        f"{name}: analyzer disagrees with EXPECT markers\n"
        f"  missing: {sorted(expected - got)}\n"
        f"  extra:   {sorted(got - expected)}"
    )


def test_corpus_covers_every_check_both_ways():
    """Each check id has at least one bad and one good fixture case."""
    bad_checks: set[str] = set()
    good_files_by_check = {
        "guarded-by": "guarded_good.py",
        "determinism": "determinism_good.py",
        "wire-compat": "wire_good.py",
        "blocking-under-lock": "blocking_good.py",
        "clock-domain": "clock_good.py",
        "lease-ack": "lease_good.py",
        "span-lifecycle": "span_good.py",
        "subscription-lifecycle": "subscription_good.py",
        "spill-lifecycle": "spill_good.py",
        "future-resolution": "future_good.py",
        "lock-order": "lockorder_good.py",
        "credit-balance": "credit_good.py",
        "handler-exhaustiveness": "handlers_good.py",
        "threadroles": "threadrole_good.py",
    }
    assert set(good_files_by_check) == set(ALL_CHECKS) | set(GLOBAL_CHECKS), (
        "every registered check needs fixture coverage; update this map")
    for path in FIXTURES.glob("*_bad.py"):
        source = _load_fixture(path.name)
        bad_checks.update(check for check, _ in _expected_markers(source))
    assert bad_checks == set(good_files_by_check), bad_checks
    for check, good_name in good_files_by_check.items():
        source = _load_fixture(good_name)
        assert analyze_source(source) == [], f"{good_name} must be clean"


# ----------------------------------------------------------------------
# regression: the analyzer catches the historical fabric bugs
# ----------------------------------------------------------------------
def test_reintroduced_unlocked_pending_access_is_flagged():
    """Stripping the lock around Manager.tracked_task_ids (the PR 2 bug
    shape) must produce a guarded-by finding."""
    path = REPO_ROOT / "src/repro/endpoint/manager.py"
    text = path.read_text(encoding="utf-8")
    locked = ("        with self._lock:\n"
              "            return [m.task_id for m in self._pending]\n")
    assert locked in text, "manager.py changed; update this regression test"
    broken = text.replace(
        locked, "        return [m.task_id for m in self._pending]\n")
    source = parse_source(broken, path="src/repro/endpoint/manager.py",
                          module="repro.endpoint.manager")
    findings = [f for f in analyze_source(source)
                if f.check == "guarded-by" and "_pending" in f.message]
    assert findings, "unlocked Manager._pending access was not flagged"

    clean = parse_source(text, path="src/repro/endpoint/manager.py",
                         module="repro.endpoint.manager")
    assert [f for f in analyze_source(clean) if f.check == "guarded-by"] == []


def test_reintroduced_leaked_lease_in_forwarder_is_flagged():
    """Restoring the pre-PR-4 ``_dispatch_tasks`` exception handler —
    which nacked only the leases still in ``pending`` and let the popped
    in-flight lease leak on an unexpected error — must produce a
    lease-ack finding anchored at the ``lease_many`` acquisition."""
    path = REPO_ROOT / "src/repro/core/forwarder.py"
    text = path.read_text(encoding="utf-8")
    fixed = """        dispatched = 0
        lease = None
        try:
            while pending:
                lease = pending.popleft()
                dispatched += self._dispatch_one(queue, lease, memo)
        except Exception:"""
    assert fixed in text, "forwarder.py changed; update this regression test"
    start = text.index(fixed)
    end = text.index("        return dispatched", start)
    old_handler = """        dispatched = 0
        try:
            while pending:
                lease = pending.popleft()
                dispatched += self._dispatch_one(queue, lease, memo)
        except Exception:
            for lease in pending:
                queue.nack(lease.lease_id)
            raise
"""
    broken = text[:start] + old_handler + text[end:]
    source = parse_source(broken, path="src/repro/core/forwarder.py",
                          module="repro.core.forwarder")
    findings = [f for f in analyze_source(source) if f.check == "lease-ack"]
    assert findings, "leaked in-flight lease was not flagged"
    lease_line = next(i for i, line in enumerate(broken.splitlines(), start=1)
                      if "queue.lease_many(budget" in line)
    assert any(f.line == lease_line for f in findings), (
        f"finding not anchored at the lease_many acquisition "
        f"(line {lease_line}): {[f.line for f in findings]}")

    clean = parse_source(text, path="src/repro/core/forwarder.py",
                         module="repro.core.forwarder")
    assert [f for f in analyze_source(clean) if f.check == "lease-ack"] == []


def test_reintroduced_lock_order_cycle_is_flagged():
    """Appending a pair of classes that acquire each other's locks in
    opposite orders to a src file must produce a lock-order cycle
    finding against the full source tree."""
    from repro.analysis.lockorder import check_lock_order
    from repro.analysis.runner import iter_python_files
    from repro.analysis.source import load_source, module_name_for

    inversion = '''

class _ReproGrip:
    def __init__(self, peer: _ReproPeer):
        self._grip_lock = threading.RLock()
        self.peer = peer

    def poke(self):
        with self._grip_lock:
            with self.peer._peer_lock:
                pass


class _ReproPeer:
    def __init__(self):
        self._peer_lock = threading.RLock()
        self.grip = None

    def adopt(self, grip: _ReproGrip):
        self.grip = grip

    def poke(self):
        with self._peer_lock:
            with self.grip._grip_lock:
                pass
'''
    sources = []
    for file_path in iter_python_files(REPO_ROOT / "src"):
        rel = str(file_path.relative_to(REPO_ROOT))
        if rel.endswith("core/forwarder.py"):
            text = file_path.read_text(encoding="utf-8") + inversion
            sources.append(parse_source(text, path=rel,
                                        module="repro.core.forwarder"))
        else:
            sources.append(load_source(file_path, rel,
                                       module_name_for(file_path)))
    findings = [f for f in check_lock_order(sources)]
    assert len(findings) == 1, [f.message for f in findings]
    assert "_ReproGrip._grip_lock" in findings[0].message
    assert "_ReproPeer._peer_lock" in findings[0].message


def test_reintroduced_raw_time_call_in_core_is_flagged():
    """Appending a raw ``time.time()`` call to a repro.core module must
    produce a determinism finding."""
    path = REPO_ROOT / "src/repro/core/client.py"
    text = path.read_text(encoding="utf-8")
    broken = text + "\n\ndef _wall_now():\n    return time.time()\n"
    source = parse_source(broken, path="src/repro/core/client.py",
                          module="repro.core.client")
    findings = [f for f in analyze_source(source) if f.check == "determinism"]
    assert len(findings) == 1
    assert findings[0].symbol == "_wall_now"


# ----------------------------------------------------------------------
# baseline semantics
# ----------------------------------------------------------------------
def _bad_findings(extra: str = ""):
    text = (FIXTURES / "determinism_bad.py").read_text(encoding="utf-8") + extra
    source = parse_source(text, path="tests/analysis_fixtures/determinism_bad.py",
                          module="repro.core.fixture")
    return [f for f in analyze_source(source) if f.check == "determinism"]


def test_baseline_suppresses_known_findings():
    findings = _bad_findings()
    assert findings
    baseline = Baseline.from_findings(findings)
    new, suppressed, stale = baseline.apply(findings)
    assert new == [] and stale == []
    assert len(suppressed) == len(findings)


def test_baseline_surfaces_new_findings():
    baseline = Baseline.from_findings(_bad_findings())
    grown = _bad_findings("\n\ndef extra():\n    return _time.time()\n")
    new, suppressed, _stale = baseline.apply(grown)
    assert [f.symbol for f in new] == ["extra"]
    assert len(suppressed) == len(grown) - 1


def test_baseline_reports_stale_entries():
    baseline = Baseline.from_findings(
        _bad_findings("\n\ndef extra():\n    return _time.time()\n"))
    new, _suppressed, stale = baseline.apply(_bad_findings())
    assert new == []
    assert len(stale) == 1 and stale[0].symbol == "extra"


def test_baseline_fingerprints_survive_line_drift():
    findings = _bad_findings()
    baseline = Baseline.from_findings(findings)
    text = (FIXTURES / "determinism_bad.py").read_text(encoding="utf-8")
    shifted = text.replace("import random", "import random\n\n# drift\n", 1)
    source = parse_source(shifted, path="tests/analysis_fixtures/determinism_bad.py",
                          module="repro.core.fixture")
    drifted = [f for f in analyze_source(source) if f.check == "determinism"]
    assert [f.line for f in drifted] != [f.line for f in findings]
    new, suppressed, stale = baseline.apply(drifted)
    assert new == [] and stale == [] and len(suppressed) == len(findings)


def test_baseline_counts_bound_duplicate_fingerprints():
    dup = ("# module: repro.core.fixture\n"
           "import time as _time\n\n\n"
           "def f():\n"
           "    _time.sleep(0.1)\n"
           "    _time.sleep(0.1)\n")
    source = parse_source(dup, path="dup.py", module="repro.core.fixture")
    findings = analyze_source(source)
    assert len(findings) == 2
    baseline = Baseline.from_findings(findings)
    entry = next(iter(baseline.entries.values()))
    assert entry.count == 2
    tripled = dup + "    _time.sleep(0.1)\n"
    source3 = parse_source(tripled, path="dup.py", module="repro.core.fixture")
    new, suppressed, _ = baseline.apply(analyze_source(source3))
    assert len(new) == 1 and len(suppressed) == 2


def test_baseline_round_trips_through_disk(tmp_path):
    baseline = Baseline.from_findings(_bad_findings())
    target = tmp_path / "baseline.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert loaded.entries == baseline.entries
    assert Baseline.load(tmp_path / "missing.json").entries == {}


def test_baseline_rejects_unknown_version(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(target)


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
def test_lint_ignore_waives_only_listed_checks():
    text = ("# module: repro.core.fixture\n"
            "import time as _time\n\n\n"
            "def f():\n"
            "    _time.sleep(0.1)  # lint: ignore[determinism]\n"
            "    _time.sleep(0.2)  # lint: ignore[guarded-by]\n"
            "    _time.sleep(0.3)  # lint: ignore\n")
    source = parse_source(text, path="waive.py", module="repro.core.fixture")
    findings = analyze_source(source)
    assert [f.line for f in findings] == [7]  # only the mismatched waiver


# ----------------------------------------------------------------------
# the tier-1 gate: src/ analyzes clean against the committed baseline
# ----------------------------------------------------------------------
def test_src_is_clean_against_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    report = run_analysis([REPO_ROOT / "src"], repo_root=REPO_ROOT,
                          baseline=baseline)
    assert report.errors == []
    assert report.files_analyzed > 50
    details = "\n".join(f.format() for f in report.findings)
    assert report.findings == [], f"non-baselined analyzer findings:\n{details}"
    stale = "\n".join(f"{e.check} {e.path} {e.symbol}" for e in report.stale)
    assert report.stale == [], f"stale baseline entries (prune them):\n{stale}"


def test_wire_messages_module_is_covered():
    """The real wire module must actually be in the wire-compat scope
    (guards against a silent rename disabling the check)."""
    path = REPO_ROOT / "src/repro/transport/messages.py"
    text = path.read_text(encoding="utf-8")
    source = parse_source(text, path="src/repro/transport/messages.py",
                          module="repro.transport.messages")
    broken = text.replace("class TaskMessage(Message):",
                          "class TaskMessage(Message):\n    sneaky: object = None",
                          1)
    assert broken != text
    bad = parse_source(broken, path="src/repro/transport/messages.py",
                       module="repro.transport.messages")
    assert [f for f in analyze_source(bad) if f.check == "wire-compat"]
    assert [f for f in analyze_source(source) if f.check == "wire-compat"] == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _make_mini_repo(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n")
    return tmp_path


def test_cli_lint_reports_and_baselines(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out and "time.time" in out

    assert cli_main(["lint", "--root", str(root), "--update-baseline"]) == 0
    capsys.readouterr()
    assert cli_main(["lint", "--root", str(root)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out
    assert cli_main(["lint", "--root", str(root), "--no-baseline"]) == 1


def test_cli_lint_json_format(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is False
    assert data["findings"][0]["check"] == "determinism"
    assert data["findings"][0]["fingerprint"]


def test_cli_lint_flags_stale_entries(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root), "--update-baseline"]) == 0
    (root / "src" / "repro" / "core" / "mod.py").write_text(
        "def now(clock):\n    return clock()\n")
    capsys.readouterr()
    assert cli_main(["lint", "--root", str(root)]) == 0
    assert "stale" in capsys.readouterr().out


def test_cli_lint_explicit_paths(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    clean = root / "src" / "repro" / "core" / "__init__.py"
    assert cli_main(["lint", "--root", str(root), str(clean)]) == 0


def test_cli_lint_paths_glob(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root),
                     "--paths", "src/repro/core/mod.py"]) == 1
    assert "[determinism]" in capsys.readouterr().out
    assert cli_main(["lint", "--root", str(root),
                     "--paths", "src/**/__init__.py"]) == 0


def test_cli_lint_paths_glob_matching_nothing_is_usage_error(tmp_path, capsys):
    root = _make_mini_repo(tmp_path)
    assert cli_main(["lint", "--root", str(root),
                     "--paths", "no/such/*.py"]) == 2
    assert "matched nothing" in capsys.readouterr().err


def test_cli_lint_explain(capsys):
    assert cli_main(["lint", "--explain", "lease-ack"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("[lease-ack]")
    assert "ack" in out and "nack" in out

    assert cli_main(["lint", "--explain", "no-such-check"]) == 2
    err = capsys.readouterr().err
    assert "unknown check" in err and "lock-order" in err


def test_cli_lint_explain_covers_every_check(capsys):
    for check in sorted(set(ALL_CHECKS) | set(GLOBAL_CHECKS)):
        assert cli_main(["lint", "--explain", check]) == 0
        assert capsys.readouterr().out.startswith(f"[{check}]")
