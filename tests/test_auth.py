"""Unit tests for the identity/token service (Globus Auth substitute)."""

from __future__ import annotations

import pytest

from repro.auth import AuthClient, AuthService, Scope
from repro.auth.scopes import ENDPOINT_SCOPES, USER_DEFAULT_SCOPES
from repro.errors import AuthenticationFailed, AuthorizationFailed


class TestIdentities:
    def test_register_and_get(self, clock):
        auth = AuthService(clock=clock)
        identity = auth.register_identity("alice", provider="orcid")
        assert auth.get_identity(identity.identity_id) == identity
        assert identity.display == "alice@orcid"

    def test_unknown_provider_rejected(self, clock):
        with pytest.raises(ValueError):
            AuthService(clock=clock).register_identity("x", provider="myspace")

    def test_unknown_identity(self, clock):
        with pytest.raises(AuthenticationFailed):
            AuthService(clock=clock).get_identity("nope")


class TestTokenFlows:
    def test_native_client_flow_default_scopes(self, clock):
        auth = AuthService(clock=clock)
        alice = auth.register_identity("alice")
        token = auth.native_client_flow(alice)
        assert token.scopes == frozenset(USER_DEFAULT_SCOPES)
        assert auth.introspect(token.token).identity == alice

    def test_endpoint_client_flow(self, clock):
        auth = AuthService(clock=clock)
        identity, token = auth.endpoint_client_flow("theta-endpoint")
        assert identity.provider == "funcx-endpoint"
        assert token.scopes == frozenset(ENDPOINT_SCOPES)

    def test_expiry(self, clock):
        auth = AuthService(token_lifetime=100.0, clock=clock)
        token = auth.native_client_flow(auth.register_identity("a"))
        clock.advance(99.0)
        auth.introspect(token.token)
        clock.advance(2.0)
        with pytest.raises(AuthenticationFailed):
            auth.introspect(token.token)

    def test_revocation(self, clock):
        auth = AuthService(clock=clock)
        token = auth.native_client_flow(auth.register_identity("a"))
        assert auth.revoke(token.token)
        with pytest.raises(AuthenticationFailed):
            auth.introspect(token.token)

    def test_revoke_unknown(self, clock):
        assert not AuthService(clock=clock).revoke("bogus")

    def test_refresh_rotates(self, clock):
        auth = AuthService(clock=clock)
        old = auth.native_client_flow(auth.register_identity("a"))
        new = auth.refresh(old.refresh_token)
        assert new.token != old.token
        with pytest.raises(AuthenticationFailed):
            auth.introspect(old.token)  # old access token revoked
        auth.introspect(new.token)

    def test_refresh_token_single_use(self, clock):
        auth = AuthService(clock=clock)
        old = auth.native_client_flow(auth.register_identity("a"))
        auth.refresh(old.refresh_token)
        with pytest.raises(AuthenticationFailed):
            auth.refresh(old.refresh_token)

    def test_unknown_refresh_token(self, clock):
        with pytest.raises(AuthenticationFailed):
            AuthService(clock=clock).refresh("nope")


class TestAuthorization:
    def test_scope_enforced(self, clock):
        auth = AuthService(clock=clock)
        alice = auth.register_identity("alice")
        token = auth.native_client_flow(alice, scopes=[Scope.EXECUTE])
        assert auth.authorize(token.token, Scope.EXECUTE) == alice
        with pytest.raises(AuthorizationFailed):
            auth.authorize(token.token, Scope.REGISTER_ENDPOINT)

    def test_admin_scope_implies_all(self, clock):
        auth = AuthService(clock=clock)
        token = auth.native_client_flow(
            auth.register_identity("root"), scopes=[Scope.ADMIN]
        )
        auth.authorize(token.token, Scope.REGISTER_FUNCTION)
        auth.authorize(token.token, Scope.EXECUTE)

    def test_scope_urns(self):
        assert Scope.REGISTER_FUNCTION.value == (
            "urn:globus:auth:scope:funcx:register_function"
        )
        assert Scope.parse(Scope.EXECUTE.value) is Scope.EXECUTE
        with pytest.raises(ValueError):
            Scope.parse("urn:bogus")


class TestGroups:
    def test_membership(self, clock):
        auth = AuthService(clock=clock)
        alice = auth.register_identity("alice")
        bob = auth.register_identity("bob")
        group = auth.create_group("xpcs-team", members=[alice])
        assert auth.is_member(group.group_id, alice.identity_id)
        assert not auth.is_member(group.group_id, bob.identity_id)
        auth.add_to_group(group.group_id, bob)
        assert auth.is_member(group.group_id, bob.identity_id)

    def test_unknown_group(self, clock):
        auth = AuthService(clock=clock)
        assert not auth.is_member("nope", "anyone")
        with pytest.raises(AuthenticationFailed):
            auth.add_to_group("nope", auth.register_identity("a"))


class TestAuthClient:
    def test_bearer_token_valid(self, clock):
        auth = AuthService(clock=clock)
        client = AuthClient(auth, auth.register_identity("a"))
        auth.introspect(client.bearer_token())

    def test_auto_refresh_near_expiry(self, clock):
        auth = AuthService(token_lifetime=100.0, clock=clock)
        client = AuthClient(auth, auth.register_identity("a"))
        first = client.bearer_token()
        clock.advance(95.0)  # inside the 10% refresh window
        second = client.bearer_token()
        assert second != first
        auth.introspect(second)

    def test_logout_revokes(self, clock):
        auth = AuthService(clock=clock)
        client = AuthClient(auth, auth.register_identity("a"))
        token = client.bearer_token()
        client.logout()
        with pytest.raises(AuthenticationFailed):
            auth.introspect(token)
