"""Backpressure proof suite: credit flow + adaptive waves under overload.

The tentpole claim (ISSUE 6): a 10:1 producer/consumer mismatch must shed
load into the bounded, observable service-side queue instead of growing
the in-flight population without bound.  This module proves it three ways:

* a chaos overload run — sustained mismatch with message drops and
  manager churn, checked by the ``bounded-in-flight`` invariant and by
  sampling the forwarder's open-lease table directly;
* hypothesis properties — credit accounting never goes negative and is
  conserved across grant/consume/release/revoke (including duplicate
  releases from lease-timeout redelivery and manager death), and the
  wave policy's hold is always bounded so a stalled consumer can never
  deadlock dispatch (liveness via injectable clocks);
* live/sim parity — the same policy on a real :class:`LocalDeployment`
  and in the DES, plus the flow-control-off configuration reproducing
  the pre-credit behavior exactly.

Selected with ``pytest -m chaos`` alongside the fault-plan runs.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DeploymentTimings, EndpointConfig, LocalDeployment
from repro.chaos import FaultPlan, FaultStep
from repro.core.flowcontrol import CreditLedger, WavePolicy
from repro.sim import SimFabric
from repro.sim.platform import THETA
from repro.store.queues import ReliableQueue
from repro.workloads.generators import uniform_rate_arrivals

pytestmark = pytest.mark.chaos


def double(x):
    return x * 2


def slow_tick(x):
    import time as _time

    _time.sleep(0.05)
    return x * 2


def short_tick(x):
    import time as _time

    _time.sleep(0.03)
    return x + 1


def wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def drain_sampling_peak(world_or_dep, service, endpoint_id, forwarder,
                        timeout=30.0):
    """Drain the endpoint while sampling the forwarder's in-flight peak."""
    peak = 0
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        peak = max(peak, forwarder.outstanding)
        if service.outstanding_tasks(endpoint_id) == 0:
            return True, peak
        time.sleep(0.002)
    return False, peak


class TestChaosOverload:
    """10:1 mismatch with drops and manager churn: bounded and recoverable."""

    def test_overload_is_bounded_sheds_to_queue_and_recovers(self, chaos_world):
        world = chaos_world(seed=11)
        # One node of 2 workers + default prefetch 4 gives a manager
        # window of 6, plus the agent's pipeline buffer of two more
        # node-windows => an advertised window of 18, fed by a burst of
        # 60 submissions.
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=2)
        forwarder = world.hooks["ep"].forwarder
        queue = world.deployment.service.task_queue(ep)
        assert wait_until(lambda: forwarder.credit_window == 18), \
            "endpoint never advertised its credit window"

        plan = FaultPlan(name="overload-churn", seed=11, steps=(
            FaultStep.make(0.10, "set_drop", "ep", probability=0.10),
            FaultStep.make(0.30, "kill_manager", "ep", index=0),
            FaultStep.make(0.90, "restart_manager", "ep"),
            FaultStep.make(1.20, "set_drop", "ep", probability=0.0),
        ))
        client = world.client()
        fid = client.register_function(slow_tick)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(60)]

        drained, peak = drain_sampling_peak(
            world, world.deployment.service, ep, forwarder, timeout=30.0)
        schedule = world.finish_plan()
        assert schedule is not None and not schedule.errors
        assert drained, "overload never drained"
        assert [f.result(timeout=30) for f in futures] == \
            [i * 2 for i in range(60)]

        # Bounded in flight: the lease table never exceeded the window,
        # even across the drop window and the manager kill/restart.
        assert peak <= 18, f"in-flight peaked at {peak} > window 18"
        # The mismatch was shed into the service-side queue, observably.
        assert queue.high_watermark >= 30
        # Zero-credit truncated waves were hit and counted.
        assert forwarder.credit_stalls > 0

        # Invariants (bounded-in-flight, queue conservation, ...) hold.
        report = world.check_final()
        assert report.ok, report.describe()
        assert report.events_seen > 0

        # Recovery to steady state: nothing in flight, window restored,
        # every manager's credits fully returned.
        assert forwarder.outstanding == 0
        assert queue.depth == 0
        assert wait_until(lambda: forwarder.credit_window == 18, timeout=5)

        # Every credit comes home — possibly only after zombie duplicate
        # executions (redelivered tasks whose results the service will
        # reject) finish and release theirs.
        def ledgers_settled():
            return all(
                manager.credits.consumed == 0
                for manager in world.hooks["ep"].endpoint.managers.values())

        assert wait_until(ledgers_settled, timeout=10), [
            manager.credits.snapshot()
            for manager in world.hooks["ep"].endpoint.managers.values()]
        for manager in world.hooks["ep"].endpoint.managers.values():
            granted, consumed, available = manager.credits.snapshot()
            assert available == granted

    def test_endpoint_churn_under_overload(self, chaos_world):
        """Disconnect/reconnect the whole endpoint mid-overload."""
        world = chaos_world(seed=29)
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=2)
        forwarder = world.hooks["ep"].forwarder
        assert wait_until(lambda: forwarder.credit_window == 18)

        plan = FaultPlan(name="overload-disconnect", seed=29, steps=(
            FaultStep.make(0.10, "set_drop", "ep", probability=0.10),
            FaultStep.make(0.25, "disconnect_endpoint", "ep"),
            FaultStep.make(0.80, "reconnect_endpoint", "ep"),
            FaultStep.make(1.00, "set_drop", "ep", probability=0.0),
        ))
        client = world.client()
        fid = client.register_function(slow_tick)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(40)]
        drained, peak = drain_sampling_peak(
            world, world.deployment.service, ep, forwarder, timeout=30.0)
        world.finish_plan()
        assert drained
        assert [f.result(timeout=30) for f in futures] == \
            [i * 2 for i in range(40)]
        assert peak <= 18
        report = world.check_final()
        assert report.ok, report.describe()


class TestCreditLedgerProperties:
    """Hypothesis: the ledger never goes negative and always conserves."""

    _ops = st.lists(
        st.tuples(st.sampled_from(["grant", "consume", "release", "revoke"]),
                  st.integers(min_value=0, max_value=8)),
        max_size=60,
    )

    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_conserved_and_never_negative(self, ops):
        ledger = CreditLedger()
        model_granted = 0
        model_consumed = 0
        for op, n in ops:
            if op == "grant":
                assert ledger.grant(n) == n
                model_granted += n
            elif op == "revoke":
                revoked = ledger.revoke(n)
                assert 0 <= revoked <= n
                model_granted -= revoked
            elif op == "consume":
                taken = ledger.consume(n)
                assert 0 <= taken <= n
                model_consumed += taken
            else:
                returned = ledger.release(n)
                assert 0 <= returned <= n
                model_consumed -= returned
            granted, consumed, available = ledger.snapshot()
            assert granted >= 0 and consumed >= 0 and available >= 0
            assert granted == consumed + available
            assert granted == model_granted
            assert consumed == model_consumed

    def test_duplicate_release_from_redelivery_is_clamped(self):
        # A lease times out, the task is redelivered, and *both* copies
        # complete: the second release must be a no-op, not go negative.
        ledger = CreditLedger(granted=2)
        assert ledger.consume(1) == 1
        assert ledger.release(1) == 1
        assert ledger.release(1) == 0
        assert ledger.snapshot() == (2, 0, 2)

    def test_manager_death_revokes_only_idle_credits(self):
        # Credits pinned by in-flight tasks survive a revoke sweep; the
        # books balance once the stragglers complete.
        ledger = CreditLedger()
        ledger.grant(4)
        assert ledger.consume(3) == 3
        assert ledger.revoke(100) == 1
        assert ledger.snapshot() == (3, 3, 0)
        assert ledger.release(3) == 3
        assert ledger.snapshot() == (3, 0, 3)

    def test_negative_amounts_rejected(self):
        ledger = CreditLedger()
        for method in (ledger.grant, ledger.revoke,
                       ledger.consume, ledger.release):
            with pytest.raises(ValueError):
                method(-1)
        with pytest.raises(ValueError):
            CreditLedger(granted=-1)


class TestWavePolicyLiveness:
    """The Nagle hold is bounded; a stalled consumer cannot deadlock it."""

    def test_zero_link_cost_dispatches_immediately(self):
        policy = WavePolicy(link_cost=lambda: 0.0)
        decision = policy.decide(depth=1, budget=8, enqueued_total=1, now=0.0)
        assert decision.size == 1
        assert decision.hold_until is None

    def test_zero_budget_never_starts_a_hold(self):
        # Stalled workers => zero credit.  The policy must not park a
        # hold deadline; the instant credit returns, dispatch proceeds.
        policy = WavePolicy(link_cost=lambda: 0.001)
        stalled = policy.decide(depth=5, budget=0, enqueued_total=5, now=0.0)
        assert stalled.size == 0
        assert stalled.hold_until is None
        resumed = policy.decide(depth=5, budget=2, enqueued_total=5, now=0.001)
        assert resumed.size == 2

    def test_hold_deadline_forces_dispatch(self):
        policy = WavePolicy(link_cost=lambda: 0.002)
        # Teach the EWMA a high arrival rate so fill > depth.
        policy.decide(depth=0, budget=8, enqueued_total=0, now=0.0)
        policy.decide(depth=0, budget=8, enqueued_total=1000, now=0.001)
        held = policy.decide(depth=1, budget=64, enqueued_total=1000, now=0.002)
        assert held.size == 0
        assert held.hold_until is not None
        assert held.hold_until <= 0.002 + policy.hold_cap + 1e-12
        fired = policy.decide(depth=1, budget=64, enqueued_total=1000,
                              now=held.hold_until)
        assert fired.size == 1
        assert fired.held_for == pytest.approx(policy.hold_budget())

    @given(
        steps=st.lists(
            st.tuples(st.integers(1, 32),      # depth
                      st.integers(1, 16),      # budget
                      st.integers(0, 50)),     # arrivals since last step
            min_size=1, max_size=40),
        cost=st.floats(min_value=0.0001, max_value=0.01),
    )
    @settings(max_examples=100, deadline=None)
    def test_every_hold_resolves_within_the_cap(self, steps, cost):
        policy = WavePolicy(link_cost=lambda: cost)
        now = 0.0
        enqueued = 0
        for depth, budget, arrivals in steps:
            enqueued += arrivals
            decision = policy.decide(depth=depth, budget=budget,
                                     enqueued_total=enqueued, now=now)
            if decision.size == 0:
                # A held wave always names a deadline within the cap,
                # and at that deadline it must dispatch.
                assert decision.hold_until is not None
                assert decision.hold_until <= now + policy.hold_cap + 1e-9
                fired = policy.decide(depth=depth, budget=budget,
                                      enqueued_total=enqueued,
                                      now=decision.hold_until)
                assert 0 < fired.size <= min(depth, budget)
                now = decision.hold_until
            else:
                assert decision.size <= min(depth, budget)
            now += 0.0005


class TestQueueDepthWatermark:
    def test_depth_tracks_and_watermark_is_monotone(self):
        q = ReliableQueue()
        assert q.depth == 0 and q.high_watermark == 0
        for i in range(5):
            q.put(i)
        assert q.depth == 5 and q.high_watermark == 5
        leases = [q.lease(lease_timeout=10.0) for _ in range(3)]
        assert q.depth == 2
        assert q.high_watermark == 5          # watermark never recedes
        q.nack(leases[0].lease_id)
        assert q.depth == 3
        q.put_many(range(10, 14))
        assert q.depth == 7
        assert q.high_watermark == 7


class TestLiveCreditFlow:
    """Credit propagation and shedding on a real deployment."""

    def test_window_propagates_via_dirty_heartbeat(self):
        # A 5 s heartbeat period would leave the forwarder blind for the
        # whole test — the credit-dirty beat must report the window long
        # before the first periodic beat is due.
        config = EndpointConfig(workers_per_node=2, prefetch_capacity=1,
                                heartbeat_period=5.0)
        with LocalDeployment() as dep:
            ep = dep.create_endpoint("cluster", nodes=2, config=config)
            forwarder = dep.forwarder(ep)
            # 2 nodes x (2 workers + 1 prefetch) + 2-deep agent buffer = 12.
            assert wait_until(lambda: forwarder.credit_window == 12,
                              timeout=2.0), \
                f"window={forwarder.credit_window} (dirty beat never fired)"
            assert dep.endpoint(ep).agent.credit_window() == 12

    def test_mismatch_sheds_into_service_queue(self):
        # Window of 3 (one worker, no prefetch, plus the two-node-window
        # agent buffer) against a burst of 8: five tasks wait
        # server-side, visibly.
        config = EndpointConfig(workers_per_node=1, prefetch_capacity=0,
                                heartbeat_period=0.05)
        with LocalDeployment() as dep:
            ep = dep.create_endpoint("tiny", nodes=1, config=config)
            forwarder = dep.forwarder(ep)
            queue = dep.service.task_queue(ep)
            assert wait_until(lambda: forwarder.credit_window == 3)
            client = dep.client()
            fid = client.register_function(short_tick)
            futures = [client.submit(fid, ep, i) for i in range(8)]
            drained, peak = drain_sampling_peak(
                dep, dep.service, ep, forwarder, timeout=20.0)
            assert drained
            assert [f.result(timeout=10) for f in futures] == \
                [i + 1 for i in range(8)]
            assert peak <= 3
            assert queue.high_watermark >= 4
            assert forwarder.credit_stalls > 0

    def test_scale_from_zero_window_keeps_demand_observable(self):
        # An endpoint with no managers yet advertises one node's worth
        # of window, not zero: a zero window would stop dispatch
        # entirely, and an elasticity controller watching agent-side
        # load could then never see the demand it should scale out for.
        config = EndpointConfig(workers_per_node=2, prefetch_capacity=1,
                                heartbeat_period=0.05)
        with LocalDeployment() as dep:
            ep = dep.create_endpoint("elastic", nodes=0, config=config)
            forwarder = dep.forwarder(ep)
            agent = dep.endpoint(ep).agent
            assert agent.credit_window() == 6
            assert wait_until(lambda: forwarder.credit_window == 6)
            client = dep.client()
            fid = client.register_function(double)
            for i in range(8):
                client.submit(fid, ep, i)
            # Demand becomes visible agent-side, but stays bounded by
            # the pipeline buffer.
            assert wait_until(
                lambda: agent.pending_count() + agent.outstanding_count() > 0)
            assert agent.pending_count() + agent.outstanding_count() <= 6
            assert forwarder.outstanding <= 6

    def test_flow_control_off_reproduces_uncredited_dispatch(self):
        # PR 5 compatibility: with both gates off the forwarder never
        # learns a window, never stalls, and dispatches the whole burst.
        config = EndpointConfig(workers_per_node=2, heartbeat_period=0.05,
                                flow_control=False, adaptive_batching=False)
        with LocalDeployment() as dep:
            ep = dep.create_endpoint("legacy", nodes=1, config=config)
            forwarder = dep.forwarder(ep)
            client = dep.client()
            fid = client.register_function(double)
            futures = [client.submit(fid, ep, i) for i in range(20)]
            assert [f.result(timeout=10) for f in futures] == \
                [i * 2 for i in range(20)]
            assert forwarder.credit_window == -1
            assert forwarder.credit_stalls == 0

    def test_adaptive_batching_keeps_serial_link_throughput(self):
        # A costed serial link is exactly where nagling should win (or
        # at least never lose): the burst still completes promptly.
        timings = DeploymentTimings(service_endpoint_transfer_cost=0.0005)
        config = EndpointConfig(workers_per_node=4, heartbeat_period=0.05)
        with LocalDeployment(timings=timings) as dep:
            ep = dep.create_endpoint("wan", nodes=1, config=config)
            client = dep.client()
            fid = client.register_function(double)
            futures = [client.submit(fid, ep, i) for i in range(30)]
            assert [f.result(timeout=15) for f in futures] == \
                [i * 2 for i in range(30)]


class TestSimAdaptiveParity:
    """The DES exercises the same hold-down policy (opt-in)."""

    def test_adaptive_sim_coalesces_trickling_arrivals(self):
        def build(adaptive):
            fab = SimFabric(THETA, managers=2, workers_per_manager=4,
                            prefetch=4, adaptive_batching=adaptive)
            fab.submit_stream(uniform_rate_arrivals(
                rate=2000, total=200, duration=0.001))
            return fab

        plain = build(adaptive=False)
        plain_report = plain.run()
        adaptive = build(adaptive=True)
        adaptive_report = adaptive.run()

        assert plain_report.tasks_completed == 200
        assert adaptive_report.tasks_completed == 200
        # The hold-down actually engaged and produced fewer, fuller waves.
        assert adaptive.waves_held > 0
        assert adaptive.waves_dispatched < plain.waves_dispatched
        # Coalescing trades a bounded hold for batching, not throughput:
        # the run may not finish meaningfully later than the eager one.
        assert adaptive_report.completion_time <= \
            plain_report.completion_time * 1.2 + 0.05

    def test_adaptive_off_by_default(self):
        fab = SimFabric(THETA, managers=1)
        assert fab.adaptive_batching is False
        fab.submit_batch(10, duration=0.0)
        fab.run()
        assert fab.waves_held == 0
