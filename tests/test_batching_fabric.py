"""Tests for the batched, event-driven dispatch fabric.

Covers the coalescing primitives (``send_many``, batch envelopes, the
serial-link transfer-cost model), the :class:`Wakeup` primitive that
replaces sleep-polling, queue lease ordering under batched lease/nack,
and envelope behavior across faulty channels.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.endpoint.config import EndpointConfig
from repro.errors import Disconnected
from repro.fabric import DeploymentTimings, LocalDeployment
from repro.store.queues import ReliableQueue
from repro.transport.channel import Channel
from repro.transport.messages import TaskBatchMessage, TaskMessage
from repro.transport.wakeup import Wakeup


class TestWakeup:
    def test_set_latches_before_wait(self):
        wakeup = Wakeup()
        wakeup.set()
        assert wakeup.wait(0.0) is True
        assert wakeup.wait(0.0) is False  # signal was consumed

    def test_timeout_returns_false(self):
        wakeup = Wakeup()
        start = time.monotonic()
        assert wakeup.wait(0.02) is False
        assert time.monotonic() - start >= 0.015

    def test_set_at_past_time_fires_immediately(self, clock):
        wakeup = Wakeup(clock=clock)
        clock.advance(1.0)
        wakeup.set_at(0.5)
        assert wakeup.wait(0.0) is True

    def test_set_at_future_ripens_with_clock(self, clock):
        wakeup = Wakeup(clock=clock)
        wakeup.set_at(1.0)
        clock.advance(1.0)
        assert wakeup.wait(0.0) is True

    def test_set_at_coalesces_to_earliest(self, clock):
        wakeup = Wakeup(clock=clock)
        wakeup.set_at(2.0)
        wakeup.set_at(1.0)
        clock.advance(1.0)
        assert wakeup.wait(0.0) is True  # the earlier schedule won

    def test_consuming_earliest_keeps_later_schedules(self, clock):
        # Regression: with two transfers in flight, consuming the first
        # ripen time must not drop the second — otherwise the later
        # message sits unreceived until the fallback poll.
        wakeup = Wakeup(clock=clock)
        wakeup.set_at(1.0)
        wakeup.set_at(2.0)
        clock.advance(1.0)
        assert wakeup.wait(0.0) is True   # first ripen consumed
        assert wakeup.wait(0.0) is False  # second not ripe yet
        clock.advance(1.0)
        assert wakeup.wait(0.0) is True   # later schedule survived

    def test_cross_thread_wake(self):
        wakeup = Wakeup()
        woke = []
        waiter = threading.Thread(target=lambda: woke.append(wakeup.wait(5.0)))
        waiter.start()
        time.sleep(0.01)
        wakeup.set()
        waiter.join(1.0)
        assert woke == [True]


class TestCoalescedTransfers:
    def test_send_many_delivers_in_order(self, clock):
        channel = Channel(clock=clock)
        messages = [f"m{i}" for i in range(5)]
        assert channel.left.send_many(messages) == 5
        assert channel.right.recv_all_ready() == messages
        assert channel.coalesced_count == 5

    def test_send_many_empty_is_noop(self, clock):
        channel = Channel(clock=clock)
        assert channel.left.send_many([]) == 0
        assert channel.coalesced_count == 0

    def test_individual_sends_serialize_on_the_link(self, clock):
        channel = Channel(clock=clock, latency=0.001, transfer_cost=0.002)
        for i in range(5):
            channel.left.send(i)
        # Each transfer occupies the link for 2 ms: the first ripens at
        # 3 ms, the last not before 5 * 2 ms + 1 ms.
        clock.advance(0.003)
        assert channel.right.recv_all_ready() == [0]
        clock.advance(0.008)  # t = 11 ms
        assert channel.right.recv_all_ready() == [1, 2, 3, 4]

    def test_coalesced_batch_pays_transfer_cost_once(self, clock):
        channel = Channel(clock=clock, latency=0.001, transfer_cost=0.002)
        assert channel.left.send_many(range(5)) == 5
        clock.advance(0.003)  # one occupancy + latency covers all five
        assert channel.right.recv_all_ready() == list(range(5))

    def test_random_loss_drops_the_whole_transfer(self):
        channel = Channel(drop_probability=0.99, seed=7)
        assert channel.left.send_many(["a", "b", "c"]) == 0
        assert channel.dropped_count == 3
        assert channel.right.recv_all_ready() == []

    def test_send_many_toward_dead_peer_drops(self):
        channel = Channel()
        channel.right.disconnect()
        assert channel.left.send_many([1, 2]) == 0
        assert channel.dropped_count == 2

    def test_send_many_from_disconnected_end_raises(self):
        channel = Channel()
        channel.left.disconnect()
        with pytest.raises(Disconnected):
            channel.left.send_many([1])

    def test_recv_all_ready_bound(self, clock):
        channel = Channel(clock=clock)
        for i in range(10):
            channel.left.send(i)
        assert channel.right.recv_all_ready(4) == [0, 1, 2, 3]
        assert channel.right.recv_all_ready() == [4, 5, 6, 7, 8, 9]

    def test_wakeup_fired_with_delivery_time(self, clock):
        channel = Channel(clock=clock, latency=0.5)
        fired = []
        channel.right.wakeup = fired.append
        channel.left.send("x")
        channel.left.send_many(["y", "z"])
        assert fired == [0.5, 0.5]


class TestBatchEnvelopesUnderFaults:
    def _envelope(self):
        task = TaskMessage(sender="f", task_id="t1", function_id="fn")
        return TaskBatchMessage(
            sender="f", tasks=(task,), function_buffers={"fn": b"code"})

    def test_envelope_toward_dead_peer_is_observably_dropped(self, clock):
        channel = Channel(clock=clock)
        channel.right.disconnect()
        assert not channel.left.send(self._envelope())
        assert channel.dropped_count == 1  # sender sees the failure

    def test_envelope_round_trips_after_reconnect(self, clock):
        channel = Channel(clock=clock)
        channel.right.disconnect()
        assert not channel.left.send(self._envelope())
        channel.right.reconnect()
        assert channel.left.send(self._envelope())
        (got,) = channel.right.recv_all_ready()
        assert got.tasks[0].task_id == "t1"
        assert got.function_buffers["fn"] == b"code"


class TestLeaseManyOrdering:
    def test_lease_many_preserves_fifo(self):
        queue = ReliableQueue()
        for i in range(6):
            queue.put(i)
        leases = queue.lease_many(4)
        assert [lease.item for lease in leases] == [0, 1, 2, 3]
        assert [lease.item for lease in queue.lease_many(4)] == [4, 5]

    def test_partial_batch_nack_redelivers_before_new_work(self):
        queue = ReliableQueue()
        for i in range(5):
            queue.put(i)
        leases = {lease.item: lease for lease in queue.lease_many(5)}
        queue.ack(leases[0].lease_id)
        queue.ack(leases[3].lease_id)
        # Nack the failures newest-first so age order lands at the front.
        for item in (4, 2, 1):
            queue.nack(leases[item].lease_id)
        queue.put(99)
        redelivered = queue.lease_many(10)
        assert [lease.item for lease in redelivered] == [1, 2, 4, 99]
        assert [lease.deliveries for lease in redelivered] == [2, 2, 2, 1]
        assert queue.conservation_delta() == 0

    def test_queue_wakeup_fires_on_put_and_nack(self):
        queue = ReliableQueue()
        fired = []
        queue.wakeup = lambda: fired.append(True)
        queue.put(1)
        assert len(fired) == 1
        lease = queue.lease()
        queue.nack(lease.lease_id)
        assert len(fired) == 2
        queue.put_many([2, 3])
        assert len(fired) == 3


def _double(x):
    return 2 * x


class TestDeploymentBatchingModes:
    def test_unbatched_polling_deployment_still_completes(self):
        config = EndpointConfig(
            message_batching=False, event_driven=False, heartbeat_period=0.05)
        with LocalDeployment() as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint("legacy", nodes=1, config=config)
            fid = client.register_function(_double)
            futures = [client.submit(fid, ep, i) for i in range(8)]
            assert [f.result(timeout=10) for f in futures] == [
                2 * i for i in range(8)]

    def test_batched_deployment_coalesces_and_records_metrics(self):
        timings = DeploymentTimings(service_endpoint_latency=0.001)
        with LocalDeployment(timings=timings) as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint("batchy", nodes=1, start=False)
            fid = client.register_function(_double)
            futures = [client.submit(fid, ep, i) for i in range(16)]
            # Start the endpoint with 16 tasks queued so the first
            # dispatch is observably a coalesced batch.
            deployment.forwarder(ep).start()
            deployment.endpoint(ep).start()
            assert [f.result(timeout=10) for f in futures] == [
                2 * i for i in range(16)]
            coalesced = deployment.metrics.value(
                "channel.coalesced_messages",
                component="forwarder", endpoint=ep)
            assert coalesced >= 16
            batch_hist = deployment.metrics.histogram(
                "dispatch.batch_size", component="forwarder", endpoint=ep)
            assert batch_hist.count >= 1
            assert batch_hist.summary()["max"] >= 2
