"""Unit tests for the CFG builder and forward-dataflow engine that power
the flow-sensitive checks (lease-ack, span-lifecycle)."""

from __future__ import annotations

import ast

from repro.analysis.cfg import (
    ENTRY,
    EXIT,
    JOIN,
    STMT,
    build_cfg,
    header_parts,
)
from repro.analysis.dataflow import Facts, ForwardAnalysis, join_facts, run_forward


def _func(src: str) -> ast.FunctionDef:
    module = ast.parse(src)
    func = module.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func


def _stmt_nodes(cfg):
    return [n for n in cfg.nodes if n.kind == STMT]


# ----------------------------------------------------------------------
# CFG structure
# ----------------------------------------------------------------------
class TestCfgStructure:
    def test_straight_line(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n"))
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count(ENTRY) == 1 and kinds.count(EXIT) == 1
        assert len(_stmt_nodes(cfg)) == 2
        # entry -> a -> b -> exit, one linear chain
        assert any(e.src == cfg.entry for e in cfg.edges)
        assert any(e.dst == cfg.exit for e in cfg.edges)

    def test_if_else_branch_labels(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"))
        branch_edges = [e for e in cfg.edges if e.branch is not None]
        assert {e.branch for e in branch_edges} == {True, False}
        # both carry the test expression
        assert all(isinstance(e.cond, ast.Name) for e in branch_edges)

    def test_if_without_else_has_fallthrough_false_edge(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    return 0\n"))
        if_node = next(n for n in _stmt_nodes(cfg)
                       if isinstance(n.stmt, ast.If))
        out = {e.branch for e in cfg.successors(if_node.index)}
        assert out == {True, False}

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"))
        head = next(n for n in _stmt_nodes(cfg)
                    if isinstance(n.stmt, ast.While))
        body = next(n for n in _stmt_nodes(cfg)
                    if isinstance(n.stmt, ast.AugAssign))
        assert any(e.dst == head.index for e in cfg.successors(body.index))
        assert any(e.branch is False for e in cfg.successors(head.index))

    def test_while_true_has_no_false_edge(self):
        cfg = build_cfg(_func(
            "def f():\n"
            "    while True:\n"
            "        break\n"))
        head = next(n for n in _stmt_nodes(cfg)
                    if isinstance(n.stmt, ast.While))
        assert not any(e.branch is False for e in cfg.successors(head.index))

    def test_break_exits_loop_continue_returns_to_header(self):
        cfg = build_cfg(_func(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "        continue\n"
            "    return 1\n"))
        head = next(n for n in _stmt_nodes(cfg) if isinstance(n.stmt, ast.For))
        cont = next(n for n in _stmt_nodes(cfg)
                    if isinstance(n.stmt, ast.Continue))
        brk = next(n for n in _stmt_nodes(cfg)
                   if isinstance(n.stmt, ast.Break))
        ret = next(n for n in _stmt_nodes(cfg)
                   if isinstance(n.stmt, ast.Return))
        assert any(e.dst == head.index for e in cfg.successors(cont.index))
        assert any(e.dst == ret.index for e in cfg.successors(brk.index))

    def test_for_edges_carry_the_for_statement_as_cond(self):
        cfg = build_cfg(_func(
            "def f(items):\n"
            "    for item in items:\n"
            "        pass\n"))
        head = next(n for n in _stmt_nodes(cfg) if isinstance(n.stmt, ast.For))
        conds = {type(e.cond) for e in cfg.successors(head.index)
                 if e.cond is not None}
        assert conds == {ast.For}

    def test_return_goes_straight_to_exit(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"))
        returns = [n for n in _stmt_nodes(cfg)
                   if isinstance(n.stmt, ast.Return)]
        assert len(returns) == 2
        for node in returns:
            assert any(e.dst == cfg.exit for e in cfg.successors(node.index))

    def test_try_body_statements_get_exceptional_edges_to_handler(self):
        cfg = build_cfg(_func(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "        b = 2\n"
            "    except ValueError:\n"
            "        c = 3\n"))
        handler = next(n for n in _stmt_nodes(cfg)
                       if isinstance(n.stmt, ast.ExceptHandler))
        body_nodes = [n for n in _stmt_nodes(cfg)
                      if isinstance(n.stmt, ast.Assign)
                      and n.stmt.targets[0].id in ("a", "b")]
        assert len(body_nodes) == 2
        for node in body_nodes:
            edges = [e for e in cfg.successors(node.index)
                     if e.dst == handler.index]
            assert edges and all(e.exceptional for e in edges)

    def test_try_finally_without_handlers_routes_through_join_to_exit(self):
        cfg = build_cfg(_func(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    finally:\n"
            "        b = 2\n"
            "    return b\n"))
        joins = [n for n in cfg.nodes if n.kind == JOIN]
        assert len(joins) == 1
        body = next(n for n in _stmt_nodes(cfg)
                    if isinstance(n.stmt, ast.Assign)
                    and n.stmt.targets[0].id == "a")
        assert any(e.dst == joins[0].index and e.exceptional
                   for e in cfg.successors(body.index))
        # the finally exit also reaches EXIT (unhandled propagation)
        fin = next(n for n in _stmt_nodes(cfg)
                   if isinstance(n.stmt, ast.Assign)
                   and n.stmt.targets[0].id == "b")
        assert any(e.dst == cfg.exit for e in cfg.successors(fin.index))


class TestHeaderParts:
    def test_compound_headers_expose_only_their_own_expressions(self):
        func = _func(
            "def f(items, cm):\n"
            "    for item in items:\n"
            "        consume(item)\n"
            "    with cm as h:\n"
            "        h.use()\n"
            "    if items:\n"
            "        pass\n")
        for_stmt, with_stmt, if_stmt = func.body
        assert header_parts(for_stmt) == [for_stmt.iter]
        assert header_parts(with_stmt) == [with_stmt.items[0].context_expr]
        assert header_parts(if_stmt) == [if_stmt.test]
        # a body call never appears in its compound header
        call = for_stmt.body[0]
        assert all(call not in header_parts(s) for s in func.body)

    def test_simple_statement_is_its_own_header(self):
        func = _func("def f():\n    a = 1\n")
        assert header_parts(func.body[0]) == [func.body[0]]


# ----------------------------------------------------------------------
# dataflow engine
# ----------------------------------------------------------------------
class _AssignedMay(ForwardAnalysis):
    """Toy may-analysis: which names have been assigned on some path."""

    def transfer(self, stmt, facts: Facts) -> Facts:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
            out = dict(facts)
            out[stmt.targets[0].id] = frozenset({("set", stmt.lineno)})
            return out
        return facts


class TestForwardDataflow:
    def test_join_is_keywise_union(self):
        a: Facts = {"x": frozenset({(1,)})}
        b: Facts = {"x": frozenset({(2,)}), "y": frozenset({(3,)})}
        joined = join_facts(a, b)
        assert joined["x"] == frozenset({(1,), (2,)})
        assert joined["y"] == frozenset({(3,)})

    def test_branch_only_assignment_is_a_may_fact_at_exit(self):
        cfg = build_cfg(_func(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    y = 2\n"))
        facts = run_forward(cfg, _AssignedMay())
        at_exit = facts[cfg.exit]
        assert "x" in at_exit and "y" in at_exit

    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        x = 1\n"
            "        n = 0\n"
            "    return n\n"))
        facts = run_forward(cfg, _AssignedMay())
        assert "x" in facts[cfg.exit]
        assert "n" in facts[cfg.exit]

    def test_exceptional_edges_carry_pre_transfer_facts(self):
        # x is assigned inside the try; on the exceptional edge out of
        # that very statement the assignment has NOT happened yet, so the
        # handler must not see x from that edge alone.
        cfg = build_cfg(_func(
            "def f():\n"
            "    try:\n"
            "        x = compute()\n"
            "    except ValueError:\n"
            "        pass\n"))
        facts = run_forward(cfg, _AssignedMay())
        handler = next(n for n in cfg.nodes
                       if isinstance(n.stmt, ast.ExceptHandler))
        assert "x" not in facts[handler.index]

    def test_refine_called_on_labelled_edges(self):
        calls = []

        class Spy(_AssignedMay):
            def refine(self, cond, branch, facts):
                calls.append(branch)
                return facts

        cfg = build_cfg(_func(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"))
        run_forward(cfg, Spy())
        assert True in calls and False in calls
