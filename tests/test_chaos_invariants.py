"""Invariant registry unit tests (synthetic event streams, no live world)."""

from __future__ import annotations

from repro.chaos import FaultStep, InvariantRegistry
from repro.chaos.invariants import Invariant


def queue_event(registry, *, enqueued, acked, in_flight, ready,
                event="queue.put", name="q"):
    registry.dispatch("queue", event, {
        "queue": name, "enqueued": enqueued, "acked": acked,
        "in_flight": in_flight, "ready": ready,
    })


class TestQueueConservation:
    def test_balanced_snapshot_passes(self):
        registry = InvariantRegistry()
        queue_event(registry, enqueued=10, acked=4, in_flight=2, ready=4)
        assert registry.ok

    def test_leak_detected(self):
        registry = InvariantRegistry()
        queue_event(registry, enqueued=10, acked=4, in_flight=2, ready=3)
        assert not registry.ok
        violation = registry.violations[0]
        assert violation.invariant == "queue-conservation"
        assert "leaks 1 item" in violation.message

    def test_non_queue_events_ignored(self):
        registry = InvariantRegistry()
        registry.dispatch("service", "task.completed", {"task_id": "t1"})
        assert registry.ok


class TestNoDoubleCompletion:
    def test_single_completion_ok(self):
        registry = InvariantRegistry()
        registry.dispatch("service", "task.completed", {"task_id": "t1"})
        registry.dispatch("service", "task.completed", {"task_id": "t2"})
        assert registry.ok

    def test_double_completion_flagged(self):
        registry = InvariantRegistry()
        registry.dispatch("service", "task.completed", {"task_id": "t1"})
        registry.dispatch("service", "task.completed", {"task_id": "t1"})
        assert [v.invariant for v in registry.violations] == ["no-double-completion"]

    def test_guarded_duplicate_is_not_a_violation(self):
        # "task.duplicate_completion" is the service *rejecting* a second
        # result — the at-least-once design working as intended.
        registry = InvariantRegistry()
        registry.dispatch("service", "task.completed", {"task_id": "t1"})
        registry.dispatch("service", "task.duplicate_completion", {"task_id": "t1"})
        assert registry.ok


class TestNoDoubleDelivery:
    def test_double_future_delivery_flagged(self):
        registry = InvariantRegistry()
        registry.dispatch("futures", "future.delivered", {"task_id": "t1"})
        registry.dispatch("futures", "future.deliver_attempt", {"task_id": "t1"})
        assert registry.ok  # a blocked attempt is fine
        registry.dispatch("futures", "future.delivered", {"task_id": "t1"})
        assert [v.invariant for v in registry.violations] == ["no-double-delivery"]


class TestMemoConsistency:
    def test_hit_matches_store(self):
        registry = InvariantRegistry()
        registry.dispatch("memo", "memo.store", {"key": "k1", "result_sha": "aa"})
        registry.dispatch("memo", "memo.hit", {"key": "k1", "result_sha": "aa"})
        assert registry.ok

    def test_hit_with_wrong_bytes_flagged(self):
        registry = InvariantRegistry()
        registry.dispatch("memo", "memo.store", {"key": "k1", "result_sha": "aa"})
        registry.dispatch("memo", "memo.hit", {"key": "k1", "result_sha": "bb"})
        assert [v.invariant for v in registry.violations] == ["memo-consistency"]
        assert "different argument hash" in registry.violations[0].message

    def test_hit_without_store_flagged(self):
        registry = InvariantRegistry()
        registry.dispatch("memo", "memo.hit", {"key": "k1", "result_sha": "aa"})
        assert not registry.ok

    def test_restore_updates_expectation(self):
        registry = InvariantRegistry()
        registry.dispatch("memo", "memo.store", {"key": "k1", "result_sha": "aa"})
        registry.dispatch("memo", "memo.store", {"key": "k1", "result_sha": "bb"})
        registry.dispatch("memo", "memo.hit", {"key": "k1", "result_sha": "bb"})
        assert registry.ok


class TestMonotoneLiveness:
    @staticmethod
    def registered(registry, incarnation):
        registry.dispatch("fwd", "liveness.registered",
                          {"component": "agent", "incarnation": incarnation})
        registry.dispatch("fwd", "liveness.transition",
                          {"component": "agent", "alive": True,
                           "incarnation": incarnation, "via": "registration"})

    @staticmethod
    def lost(registry, incarnation):
        registry.dispatch("fwd", "liveness.transition",
                          {"component": "agent", "alive": False,
                           "incarnation": incarnation, "via": "heartbeat-timeout"})

    def test_normal_flap_cycle_ok(self):
        registry = InvariantRegistry()
        self.registered(registry, 1)
        self.lost(registry, 1)
        self.registered(registry, 2)
        self.lost(registry, 2)
        assert registry.ok

    def test_incarnation_must_increase(self):
        registry = InvariantRegistry()
        self.registered(registry, 2)
        self.lost(registry, 2)
        self.registered(registry, 2)  # repeated incarnation
        assert any(v.invariant == "monotone-liveness" and "strictly increase"
                   in v.message for v in registry.violations)

    def test_duplicate_transition_flagged(self):
        registry = InvariantRegistry()
        self.registered(registry, 1)
        self.lost(registry, 1)
        self.lost(registry, 1)  # already lost
        assert any("duplicate liveness transition" in v.message
                   for v in registry.violations)

    def test_revival_needs_registration_or_heartbeat(self):
        registry = InvariantRegistry()
        self.registered(registry, 1)
        self.lost(registry, 1)
        registry.dispatch("fwd", "liveness.transition",
                          {"component": "agent", "alive": True,
                           "incarnation": 1, "via": "gut-feeling"})
        assert any("without a registration or heartbeat" in v.message
                   for v in registry.violations)


class TestRegistryMechanics:
    def test_violation_names_current_fault_step(self):
        registry = InvariantRegistry()
        step = FaultStep.make(0.5, "disconnect_endpoint", "ep")
        registry.set_step(step)
        queue_event(registry, enqueued=5, acked=5, in_flight=1, ready=0)
        registry.set_step(None)
        violation = registry.violations[0]
        assert violation.fault_step == step
        assert "disconnect_endpoint" in violation.describe()

    def test_probe_tags_source(self):
        seen = []

        class Spy(Invariant):
            name = "spy"

            def on_event(self, source, event, fields, record):
                seen.append((source, event))

        registry = InvariantRegistry([Spy()])
        registry.probe("channel:ep")("channel.dropped", {"reason": "x"})
        assert seen == [("channel:ep", "channel.dropped")]

    def test_broken_invariant_does_not_propagate(self):
        class Broken(Invariant):
            name = "broken"

            def on_event(self, source, event, fields, record):
                raise RuntimeError("checker bug")

        registry = InvariantRegistry([Broken()])
        registry.dispatch("queue", "queue.put", {})  # must not raise
        assert registry.violations[0].invariant == "broken"
        assert "checker bug" in registry.violations[0].message

    def test_check_final_runs_quiescence_checks(self):
        class FinalOnly(Invariant):
            name = "final-only"

            def check_final(self, world, record):
                record("world is None here", {"world": repr(world)})

        registry = InvariantRegistry([FinalOnly()])
        assert registry.ok
        new = registry.check_final(None)
        assert len(new) == 1
        assert new[0].invariant == "final-only"
