"""Fault plans: determinism, serialization, and the sim bridge."""

from __future__ import annotations

import pytest

from repro.chaos import ACTIONS, FaultPlan, FaultStep, generate_plan
from repro.sim.fabric import FailureSchedule


class TestFaultStep:
    def test_make_validates_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultStep.make(0.1, "unplug_the_router", "ep")

    def test_all_declared_actions_are_valid(self):
        for action in ACTIONS:
            step = FaultStep.make(0.5, action, "ep")
            assert step.action == action

    def test_params_are_canonically_sorted(self):
        step = FaultStep.make(0.1, "set_drop", "ep", zeta=1, alpha=2)
        assert step.params == (("alpha", 2), ("zeta", 1))
        assert step.param("alpha") == 2
        assert step.param("missing", 42) == 42

    def test_record_round_trip(self):
        step = FaultStep.make(0.25, "set_latency", "ep", latency=0.05)
        assert FaultStep.from_record(step.to_record()) == step

    def test_describe_names_time_action_target(self):
        text = FaultStep.make(1.5, "disconnect_endpoint", "ep").describe()
        assert "t+1.500s" in text
        assert "disconnect_endpoint" in text
        assert "@ep" in text


class TestFaultPlan:
    def test_steps_sorted_by_time(self):
        late = FaultStep.make(2.0, "pause")
        early = FaultStep.make(0.5, "pause")
        plan = FaultPlan(name="p", seed=1, steps=(late, early))
        assert plan.steps == (early, late)
        assert plan.duration == 2.0

    def test_json_round_trip(self):
        plan = generate_plan("rt", seed=11, duration=2.0, endpoints=["a", "b"],
                             drop_windows=2, latency_spikes=1, disconnects=1)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.schedule_bytes() == plan.schedule_bytes()

    def test_empty_plan(self):
        plan = FaultPlan(name="empty", seed=0)
        assert plan.duration == 0.0
        assert plan.checksum() == FaultPlan(name="empty", seed=0).checksum()


class TestDeterminism:
    """Same seed + same spec => byte-identical fault schedule."""

    KWARGS = dict(duration=3.0, endpoints=["ep1", "ep2"], drop_windows=2,
                  latency_spikes=2, disconnects=1, manager_kills=1,
                  heartbeat_skews=1)

    def test_same_seed_byte_identical(self):
        one = generate_plan("det", seed=42, **self.KWARGS)
        two = generate_plan("det", seed=42, **self.KWARGS)
        assert one.schedule_bytes() == two.schedule_bytes()
        assert one.checksum() == two.checksum()

    def test_different_seed_differs(self):
        one = generate_plan("det", seed=42, **self.KWARGS)
        two = generate_plan("det", seed=43, **self.KWARGS)
        assert one.schedule_bytes() != two.schedule_bytes()

    def test_endpoint_order_does_not_matter(self):
        fwd = generate_plan("det", seed=7, duration=2.0,
                            endpoints=["a", "b"], drop_windows=1)
        rev = generate_plan("det", seed=7, duration=2.0,
                            endpoints=["b", "a"], drop_windows=1)
        assert fwd.schedule_bytes() == rev.schedule_bytes()

    def test_generated_steps_within_duration(self):
        plan = generate_plan("det", seed=5, **self.KWARGS)
        assert all(0.0 <= s.at <= 3.0 for s in plan.steps)


class TestSimBridge:
    def test_disconnect_pairs_become_endpoint_failures(self):
        plan = FaultPlan(name="b", seed=0, steps=(
            FaultStep.make(1.0, "disconnect_endpoint", "ep"),
            FaultStep.make(2.5, "reconnect_endpoint", "ep"),
        ))
        schedule = plan.to_failure_schedule()
        assert isinstance(schedule, FailureSchedule)
        assert schedule.endpoint_failures == ((1.0, 2.5),)
        assert schedule.manager_failures == ()

    def test_manager_kill_pairs_become_manager_failures(self):
        plan = FaultPlan(name="b", seed=0, steps=(
            FaultStep.make(0.5, "kill_manager", "ep", index=1),
            FaultStep.make(1.5, "restart_manager", "ep"),
        ))
        schedule = plan.to_failure_schedule()
        assert schedule.manager_failures == ((0.5, 1.5, 1),)

    def test_non_failure_actions_skipped(self):
        plan = FaultPlan(name="b", seed=0, steps=(
            FaultStep.make(0.1, "set_drop", "ep", probability=0.5),
            FaultStep.make(0.2, "skew_heartbeats", "ep", skew=5.0),
        ))
        schedule = plan.to_failure_schedule()
        assert schedule.endpoint_failures == ()
        assert schedule.manager_failures == ()
