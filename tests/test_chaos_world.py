"""Live chaos runs: fault plans against a real deployment, invariants on.

These are the paper's §5.4 fault-tolerance experiments turned into
continuously-checked tests (select with ``pytest -m chaos``).  Every run
is seeded — the world's channel RNGs and the fault plan share a
deterministic schedule — so failures replay exactly.
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import ChaosWorld, FaultPlan, FaultStep, generate_plan
from repro.chaos.invariants import Invariant, default_invariants

pytestmark = pytest.mark.chaos


def double(x):
    return x * 2


def slow_double(x):
    import time as _time

    _time.sleep(0.25)
    return x * 2


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestDisconnectMidFlight:
    """Paper fig. 8: kill an endpoint with tasks in flight, recover it."""

    def test_invariants_hold_and_all_tasks_complete(self, chaos_world):
        world = chaos_world(seed=13)
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=4)
        plan = FaultPlan(name="fig8-disconnect", seed=13, steps=(
            FaultStep.make(0.10, "set_drop", "ep", probability=0.15),
            FaultStep.make(0.20, "disconnect_endpoint", "ep"),
            FaultStep.make(0.60, "reconnect_endpoint", "ep"),
            FaultStep.make(0.70, "set_drop", "ep", probability=0.0),
        ))
        client = world.client()
        fid = client.register_function(double)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(40)]
        schedule = world.finish_plan()
        assert schedule is not None and not schedule.errors
        assert world.drain(timeout=30)
        results = [f.result(timeout=30) for f in futures]
        assert results == [i * 2 for i in range(40)]
        report = world.check_final()
        assert report.ok, report.describe()
        assert report.events_seen > 0

    def test_generated_plan_smoke(self, chaos_world):
        """Deterministic-seed smoke: a generated plan with every fault kind."""
        world = chaos_world(seed=21)
        ep = world.add_endpoint("ep", nodes=2, workers_per_node=2)
        plan = generate_plan("smoke", seed=21, duration=0.8, endpoints=["ep"],
                             drop_windows=1, max_drop=0.2, latency_spikes=1,
                             disconnects=1, manager_kills=1)
        client = world.client()
        fid = client.register_function(double)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(25)]
        world.finish_plan()
        assert world.drain(timeout=30)
        assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(25)]
        report = world.check_final()
        assert report.ok, report.describe()


class TestBrokenInvariantIsCaught:
    """Disable the forwarder's requeue path: tasks must be reported lost,
    naming the fault step that stranded them."""

    def test_disabled_requeue_reported_as_task_loss(self, chaos_world):
        world = chaos_world(seed=5)
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=2)
        forwarder = world.hooks["ep"].forwarder
        queue = world.deployment.service.task_queue(ep)

        def broken_requeue(reason: str) -> None:
            # The bug under test: leases are acked (dropped for good)
            # instead of nacked back into the task queue.
            with forwarder._lock:
                leases = dict(forwarder._open_leases)
                forwarder._open_leases.clear()
            for _task_id, lease in leases.items():
                queue.ack(lease.lease_id)

        forwarder._requeue_outstanding = broken_requeue

        client = world.client()
        fid = client.register_function(slow_double)
        futures = [client.submit(fid, ep, i) for i in range(6)]
        assert wait_until(lambda: forwarder.outstanding >= 6)
        # Disconnect with everything in flight; never reconnect.
        plan = FaultPlan(name="broken-requeue", seed=5, steps=(
            FaultStep.make(0.05, "disconnect_endpoint", "ep"),
        ))
        world.run_plan(plan)
        # Wait out the heartbeat grace so the forwarder declares the agent
        # lost and runs the (broken) requeue path.
        assert wait_until(lambda: not forwarder.agent_connected, timeout=10)
        assert wait_until(lambda: forwarder.outstanding == 0, timeout=10)

        report = world.check_final()
        assert not report.ok
        lost = [v for v in report.violations if v.invariant == "no-task-lost"]
        assert lost, report.describe()
        # The report names both the violated invariant and the fault step.
        violation = lost[0]
        assert violation.fault_step is not None
        assert violation.fault_step.action == "disconnect_endpoint"
        assert "no-task-lost" in violation.describe()
        assert "disconnect_endpoint" in violation.describe()
        del futures  # never resolve: the tasks were permanently lost


class TestHeartbeatSkew:
    def test_skewed_heartbeats_flap_liveness_monotonically(self, chaos_world):
        transitions = []

        class LivenessSpy(Invariant):
            name = "liveness-spy"

            def on_event(self, source, event, fields, record):
                if event == "liveness.transition":
                    transitions.append(fields["alive"])

        world = chaos_world(seed=9, invariants=default_invariants() + [LivenessSpy()])
        world.add_endpoint("ep", nodes=1, workers_per_node=2,
                           heartbeat_period=0.05, heartbeat_grace=4)
        forwarder = world.hooks["ep"].forwarder
        plan = FaultPlan(name="skew", seed=9, steps=(
            FaultStep.make(0.05, "skew_heartbeats", "ep", skew=30.0),
            FaultStep.make(0.70, "skew_heartbeats", "ep", skew=0.0),
        ))
        world.run_plan(plan)
        assert wait_until(lambda: forwarder.agent_connected, timeout=10)
        assert wait_until(lambda: False in transitions and transitions[-1] is True,
                          timeout=10)
        report = world.check_final()
        assert report.ok, report.describe()


class TestSanitizedChaosRun:
    """The runtime lock-order sanitizer rides a full fault-plan run: every
    lock-acquisition-order edge actually observed must already be known
    to the static lock-order graph (no cycles, no surprise nesting)."""

    def test_runtime_lock_graph_is_subgraph_of_static(self, chaos_world):
        from pathlib import Path

        from repro.analysis.lockorder import extract_lock_graph
        from repro.analysis.runner import iter_python_files
        from repro.analysis.source import load_source, module_name_for

        world = chaos_world(seed=29, sanitize_locks=True)
        ep = world.add_endpoint("ep", nodes=2, workers_per_node=2)
        plan = FaultPlan(name="sanitized-run", seed=29, steps=(
            FaultStep.make(0.10, "set_drop", "ep", probability=0.15),
            FaultStep.make(0.25, "disconnect_endpoint", "ep"),
            FaultStep.make(0.55, "reconnect_endpoint", "ep"),
            FaultStep.make(0.65, "set_drop", "ep", probability=0.0),
        ))
        client = world.client()
        fid = client.register_function(double)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(30)]
        world.finish_plan()
        assert world.drain(timeout=30)
        assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(30)]
        assert world.check_final().ok

        recorder = world.deployment.lock_recorder
        assert recorder is not None
        assert recorder.acquisitions > 0
        assert recorder.cycles == [], [c.format() for c in recorder.cycles]

        repo_root = Path(__file__).resolve().parent.parent
        sources = [load_source(p, str(p.relative_to(repo_root)),
                               module_name_for(p))
                   for p in iter_python_files(repo_root / "src")]
        static = extract_lock_graph(sources)
        runtime = recorder.class_graph()
        assert runtime.is_subgraph_of(static), (
            f"runtime lock-order edges unknown to the static graph: "
            f"{runtime.missing_from(static)}")

    def test_runtime_cross_role_attrs_within_static_shared_set(self, chaos_world):
        """Thread-role acceptance gate: every attribute the AccessRecorder
        observed from ≥ 2 thread roles during a fault-plan run must already
        be in the static pass's inferred shared-set — a cross-role access
        the inference missed means the race detector has a blind spot."""
        from pathlib import Path

        from repro.analysis.runner import iter_python_files
        from repro.analysis.source import load_source, module_name_for
        from repro.analysis.threadroles import build_role_report

        world = chaos_world(seed=31, sanitize_locks=True)
        ep = world.add_endpoint("ep", nodes=2, workers_per_node=2)
        plan = generate_plan("role-twin", seed=31, duration=0.6,
                             endpoints=["ep"], drop_windows=1, max_drop=0.2)
        client = world.client()
        fid = client.register_function(double)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(30)]
        world.finish_plan()
        assert world.drain(timeout=30)
        assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(30)]

        recorder = world.deployment.access_recorder
        assert recorder is not None
        observed = recorder.observed_roles()
        assert observed, "sanitized chaos run recorded no attribute accesses"
        # Every observing thread mapped onto the static role taxonomy.
        for key, roles in observed.items():
            assert roles, key

        repo_root = Path(__file__).resolve().parent.parent
        sources = [load_source(p, str(p.relative_to(repo_root)),
                               module_name_for(str(p.relative_to(repo_root))))
                   for p in iter_python_files(repo_root / "src")]
        shared = build_role_report(sources).shared_attrs()
        extra = recorder.cross_role_attrs() - shared
        assert not extra, (
            f"runtime cross-role attribute accesses unknown to the static "
            f"shared-set: {sorted(extra)}")


class TestArtifactReplay:
    def test_failure_artifact_rebuilds_world_and_plan(self, chaos_world, tmp_path):
        plan = generate_plan("replayable", seed=17, duration=0.5,
                             endpoints=["ep"], drop_windows=1, max_drop=0.2)
        world = chaos_world(seed=17)
        world.add_endpoint("ep", nodes=1, workers_per_node=2,
                           drop_probability=0.05, lease_timeout=0.4)
        path = tmp_path / "failure.json"
        world.save_artifact(str(path), plan)
        world.close()

        replayed, replayed_plan = ChaosWorld.replay(str(path))
        with replayed:
            assert replayed_plan.schedule_bytes() == plan.schedule_bytes()
            assert replayed.seed == 17
            hooks = replayed.hooks["ep"]
            assert hooks.spec["drop_probability"] == 0.05
            assert hooks.spec["lease_timeout"] == 0.4
            assert hooks.forwarder.lease_timeout == 0.4
            # The replayed world actually runs the recorded plan.
            client = replayed.client()
            fid = client.register_function(double)
            ep = replayed.endpoint_id("ep")
            replayed.start_plan(replayed_plan)
            futures = [client.submit(fid, ep, i) for i in range(10)]
            replayed.finish_plan()
            assert replayed.drain(timeout=30)
            assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(10)]
            assert replayed.check_final().ok

    def test_replay_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="unsupported artifact version"):
            ChaosWorld.replay(str(path))


class TestShardKillMidStorm:
    """Kill a service shard with tasks in flight, restart it: the
    partition's durable queues redeliver every yanked lease and the
    per-shard + cross-shard conservation invariants must close."""

    def test_no_tasks_lost_across_shard_kill_restart(self, chaos_world):
        world = chaos_world(seed=31, shards=2)
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=4)
        service = world.deployment.service
        shard = service.shard_map.shard_for_endpoint(ep)
        plan = FaultPlan(name="shard-kill", seed=31, steps=(
            FaultStep.make(0.15, "kill_shard", shard=shard),
            FaultStep.make(0.45, "restart_shard", shard=shard),
        ))
        client = world.client()
        fid = client.register_function(slow_double)
        world.start_plan(plan)
        futures = [client.submit(fid, ep, i) for i in range(30)]
        schedule = world.finish_plan()
        assert schedule is not None and not schedule.errors
        assert world.drain(timeout=60)
        assert [f.result(timeout=60) for f in futures] == [
            i * 2 for i in range(30)]
        report = world.check_final()
        assert report.ok, report.describe()
        # the kill really happened on the endpoint's shard
        assert service.shards[shard].counters()["received"] == 30
        assert service.shards[1 - shard].counters()["received"] == 0

    def test_submissions_rejected_while_killed_resume_after_restart(
            self, chaos_world):
        from repro.errors import ShardDraining

        world = chaos_world(seed=32, shards=2)
        ep = world.add_endpoint("ep", nodes=1, workers_per_node=2)
        service = world.deployment.service
        shard = service.shard_map.shard_for_endpoint(ep)
        client = world.client()
        fid = client.register_function(double)

        world.apply_step(FaultStep.make(0.0, "kill_shard", shard=shard))
        with pytest.raises(ShardDraining):
            client.run(fid, ep, 1)
        world.apply_step(FaultStep.make(0.0, "restart_shard", shard=shard))
        assert client.submit(fid, ep, 21).result(timeout=30) == 42
        report = world.check_final()
        assert report.ok, report.describe()
