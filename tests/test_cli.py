"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_defaults(self):
        args = build_parser().parse_args(["scale"])
        assert args.platform == "theta"
        assert args.containers == 256

    def test_scale_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale", "--platform", "summit"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert not args.backpressure
        assert args.tasks == 96
        assert args.latency == pytest.approx(0.001)
        assert args.transfer_cost == pytest.approx(0.001)


class TestCommands:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "theta" in out and "cori" in out
        assert "1694" in out

    def test_casestudies(self, capsys):
        assert main(["casestudies", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "xpcs" in out and "metadata" in out

    def test_scale(self, capsys):
        assert main(["scale", "--containers", "64", "--tasks", "640"]) == 0
        out = capsys.readouterr().out
        assert "completion" in out and "throughput" in out

    def test_elasticity(self, capsys):
        assert main(["elasticity", "--bursts", "1"]) == 0
        out = capsys.readouterr().out
        assert "peak-pods" in out
        assert "functions completed: 26" in out

    def test_demo(self, capsys):
        assert main(["demo", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "double(21) -> 42" in out

    def test_bench_quick(self, capsys):
        assert main(["bench", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "per-message" in out and "batched" in out
        assert "speedup:" in out and "p50 improvement:" in out

    def test_bench_backpressure_quick(self, capsys):
        assert main(["bench", "--quick", "--backpressure"]) == 0
        out = capsys.readouterr().out
        assert "credit window" in out
        assert "bounded in flight: yes" in out
        assert "credit stalls" in out

    def test_bench_result_stream_quick(self, capsys):
        assert main(["bench", "--quick", "--result-stream"]) == 0
        out = capsys.readouterr().out
        assert "push" in out and "poll" in out
        assert "poll floor: yes" in out
        assert "faster than polling" in out
