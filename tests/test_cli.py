"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_defaults(self):
        args = build_parser().parse_args(["scale"])
        assert args.platform == "theta"
        assert args.containers == 256

    def test_scale_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale", "--platform", "summit"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert not args.backpressure
        assert not args.shard_scale
        assert args.tasks == 96
        assert args.latency == pytest.approx(0.001)
        assert args.transfer_cost == pytest.approx(0.001)


class TestCommands:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "theta" in out and "cori" in out
        assert "1694" in out

    def test_casestudies(self, capsys):
        assert main(["casestudies", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "xpcs" in out and "metadata" in out

    def test_scale(self, capsys):
        assert main(["scale", "--containers", "64", "--tasks", "640"]) == 0
        out = capsys.readouterr().out
        assert "completion" in out and "throughput" in out

    def test_elasticity(self, capsys):
        assert main(["elasticity", "--bursts", "1"]) == 0
        out = capsys.readouterr().out
        assert "peak-pods" in out
        assert "functions completed: 26" in out

    def test_demo(self, capsys):
        assert main(["demo", "--tasks", "8"]) == 0
        out = capsys.readouterr().out
        assert "double(21) -> 42" in out

    def test_bench_quick(self, capsys):
        assert main(["bench", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "per-message" in out and "batched" in out
        assert "speedup:" in out and "p50 improvement:" in out

    def test_bench_backpressure_quick(self, capsys):
        assert main(["bench", "--quick", "--backpressure"]) == 0
        out = capsys.readouterr().out
        assert "credit window" in out
        assert "bounded in flight: yes" in out
        assert "credit stalls" in out

    def test_bench_shard_scale_quick(self, capsys):
        assert main(["bench", "--quick", "--shard-scale"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out and "tasks/s" in out
        assert "speedup 1->4:" in out
        assert "fairness p99 gap:" in out
        assert "near-linear and fair: yes" in out

    def test_bench_result_stream_quick(self, capsys):
        assert main(["bench", "--quick", "--result-stream"]) == 0
        out = capsys.readouterr().out
        assert "push" in out and "poll" in out
        assert "poll floor: yes" in out
        assert "faster than polling" in out


class TestLintFlags:
    """The git-scoped and protocol-scoped lint entry points."""

    @staticmethod
    def _seed_repo(tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "clean.py").write_text("def add(x, y):\n    return x + y\n")
        return pkg

    @staticmethod
    def _git(root, *argv):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
            cwd=root, check=True, capture_output=True)

    def test_protocols_selects_checks(self, tmp_path, capsys):
        pkg = self._seed_repo(tmp_path)
        # One determinism violation and one subscription leak: scoping to
        # the protocol checks must hide the former and keep the latter.
        (pkg / "mod.py").write_text(
            "import time\n\n\n"
            "def leak(pubsub, cb):\n"
            "    token = pubsub.subscribe('t', cb)\n"
            "    if time.time() > 0:\n"
            "        raise RuntimeError('leak')\n"
            "    pubsub.unsubscribe(token)\n")
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--protocols", "subscription-lifecycle"]) == 1
        out = capsys.readouterr().out
        assert "[subscription-lifecycle]" in out
        assert "[determinism]" not in out
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--protocols", "credit-balance,handler-exhaustiveness"]
                    ) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_protocols_unknown_name_is_usage_error(self, tmp_path, capsys):
        self._seed_repo(tmp_path)
        assert main(["lint", "--root", str(tmp_path),
                     "--protocols", "no-such-protocol"]) == 2
        err = capsys.readouterr().err
        assert "unknown check(s): no-such-protocol" in err
        assert "subscription-lifecycle" in err

    def test_changed_scopes_to_git_diff(self, tmp_path, capsys):
        pkg = self._seed_repo(tmp_path)
        (pkg / "mod.py").write_text("def ok():\n    return 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-q", "-m", "seed")

        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--changed"]) == 0
        assert "nothing to lint" in capsys.readouterr().out

        # A tracked edit and an untracked file are both in scope; the
        # committed-but-unchanged violation is not.
        (pkg / "mod.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        (pkg / "fresh.py").write_text(
            "import random\n\n\ndef roll():\n    return random.random()\n")
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--changed"]) == 1
        out = capsys.readouterr().out
        assert "2 files analyzed" in out
        assert "time.time" in out and "random.random" in out

    def test_changed_outside_git_is_usage_error(self, tmp_path, capsys):
        self._seed_repo(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--changed"]) == 2
        assert "requires a git checkout" in capsys.readouterr().err


class TestLintThreadRoles:
    """The threadroles CLI surface: --roles filter, --explain, --format
    sarif, and the uniform 0/1/2 exit codes."""

    _RACY = (
        "import threading\n\n\n"
        "class Pipeline:\n"
        "    def __init__(self):\n"
        "        self._thread = None\n"
        "        self.processed = 0\n\n"
        "    def start(self):\n"
        "        self._thread = threading.Thread(target=self._run,\n"
        "                                        name='worker-0')\n"
        "        self._thread.start()\n\n"
        "    def _run(self):\n"
        "        self.processed += 1\n\n"
        "    def nudge(self):\n"
        "        self.processed += 1\n")

    def _seed(self, tmp_path):
        pkg = TestLintFlags._seed_repo(tmp_path)
        (pkg / "racy.py").write_text(self._RACY)
        return pkg

    def test_race_reported_and_roles_filter(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[threadroles]" in out
        assert "worker" in out
        # scoped to an uninvolved role the finding disappears
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--roles", "elasticity"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out
        # scoped to an involved role it stays
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--roles", "worker,main"]) == 1

    def test_unknown_role_is_usage_error(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--roles", "no-such-role"]) == 2
        err = capsys.readouterr().err
        assert "unknown role(s): no-such-role" in err
        assert "forwarder-loop" in err

    def test_explain_threadroles(self, capsys):
        assert main(["lint", "--explain", "threadroles"]) == 0
        out = capsys.readouterr().out
        assert "[threadroles]" in out
        assert "thread roles" in out

    def test_sarif_output_is_valid_and_fingerprinted(self, tmp_path, capsys):
        import json

        self._seed(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert "threadroles" in rule_ids
        assert rule_ids == sorted(rule_ids)
        results = run["results"]
        assert results, "expected at least the threadroles result"
        hit = next(r for r in results if r["ruleId"] == "threadroles")
        assert hit["level"] == "error"
        assert hit["partialFingerprints"]["reproFingerprint/v1"]
        location = hit["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("racy.py")
        assert location["region"]["startLine"] > 0
        # rule index round-trips
        assert run["tool"]["driver"]["rules"][hit["ruleIndex"]]["id"] == (
            "threadroles")

    def test_sarif_clean_tree_exits_zero(self, tmp_path, capsys):
        import json

        TestLintFlags._seed_repo(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--no-baseline",
                     "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []
