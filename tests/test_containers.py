"""Unit tests for container specs, runtimes (Table 2 models) and warming."""

from __future__ import annotations

import random

import pytest

from repro.containers import (
    ColdStartModel,
    ContainerRuntime,
    ContainerSpec,
    ContainerTechnology,
    TABLE2_MODELS,
    WarmPool,
    cold_start_model_for,
)


class TestContainerSpec:
    def test_key_includes_technology(self):
        spec = ContainerSpec(image="dlhub/mnist", technology=ContainerTechnology.SINGULARITY)
        assert spec.key == "singularity:dlhub/mnist"

    def test_bare_key(self):
        assert ContainerSpec.bare().key == "RAW"

    def test_requires_image(self):
        with pytest.raises(ValueError):
            ContainerSpec(image="")

    def test_base_software_always_present(self):
        spec = ContainerSpec(image="x")
        assert "python3" in spec.software
        assert "funcx-worker" in spec.software

    def test_satisfies(self):
        spec = ContainerSpec(image="x", python_packages=frozenset({"numpy", "tomopy"}))
        assert spec.satisfies({"numpy"})
        assert spec.satisfies({"numpy", "python3"})
        assert not spec.satisfies({"tensorflow"})

    def test_convert_changes_technology_only(self):
        docker = ContainerSpec(image="img", python_packages=frozenset({"scipy"}))
        shifter = docker.convert(ContainerTechnology.SHIFTER)
        assert shifter.technology is ContainerTechnology.SHIFTER
        assert shifter.image == docker.image
        assert shifter.python_packages == docker.python_packages
        assert shifter.spec_id != docker.spec_id

    def test_convert_to_bare_rejected(self):
        with pytest.raises(ValueError):
            ContainerSpec(image="x").convert(ContainerTechnology.NONE)


class TestColdStartModel:
    def test_samples_within_bounds(self):
        model = ColdStartModel(9.83, 14.06, 10.40)
        rng = random.Random(1)
        for _ in range(500):
            assert 9.83 <= model.sample(rng) <= 14.06

    def test_mean_matches_calibration(self):
        model = TABLE2_MODELS[("cori", ContainerTechnology.SHIFTER)]
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 8.49) / 8.49 < 0.10  # within 10% of Table 2

    def test_degenerate_span(self):
        model = ColdStartModel(2.0, 2.0, 2.0)
        assert model.sample(random.Random(0)) == 2.0

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            ColdStartModel(1.0, 2.0, 5.0)

    def test_all_table2_rows_present(self):
        assert len(TABLE2_MODELS) == 4
        assert ("theta", ContainerTechnology.SINGULARITY) in TABLE2_MODELS
        assert ("ec2", ContainerTechnology.DOCKER) in TABLE2_MODELS


class TestModelLookup:
    def test_exact_match(self):
        model = cold_start_model_for("theta", ContainerTechnology.SINGULARITY)
        assert model.mean == 10.40

    def test_case_insensitive(self):
        assert cold_start_model_for("Theta", ContainerTechnology.SINGULARITY).mean == 10.40

    def test_fallback_docker(self):
        assert cold_start_model_for("unknown", ContainerTechnology.DOCKER).mean == 1.79

    def test_fallback_shifter(self):
        assert cold_start_model_for("unknown", ContainerTechnology.SHIFTER).mean == 8.49

    def test_bare_near_free(self):
        assert cold_start_model_for("anything", ContainerTechnology.NONE).maximum < 0.1


class TestContainerRuntime:
    def test_instantiate_records_cold_start(self):
        rt = ContainerRuntime(system="ec2", seed=1)
        inst = rt.instantiate(ContainerSpec(image="x"), now=5.0)
        assert 1.74 <= inst.cold_start_time <= 1.88
        assert inst.started_at == 5.0
        assert rt.total_cold_starts == 1

    def test_concurrency_limit_queues_waves(self):
        rt = ContainerRuntime(system="theta", seed=1, concurrency_limit=4)
        base = rt.queued_cold_start(ContainerTechnology.SINGULARITY, concurrent=0)
        waved = rt.queued_cold_start(ContainerTechnology.SINGULARITY, concurrent=8)
        assert waved > base

    def test_measure_samples(self):
        rt = ContainerRuntime(system="cori", seed=3)
        samples = rt.measure(ContainerTechnology.SHIFTER, 50)
        assert len(samples) == 50
        assert all(7.25 <= s <= 31.26 for s in samples)
        with pytest.raises(ValueError):
            rt.measure(ContainerTechnology.SHIFTER, 0)

    def test_unique_instance_ids(self):
        rt = ContainerRuntime(seed=0)
        a = rt.instantiate(ContainerSpec.bare())
        b = rt.instantiate(ContainerSpec.bare())
        assert a.instance_id != b.instance_id


class TestWarmPool:
    def test_acquire_from_empty_is_miss(self):
        pool = WarmPool(ttl=300)
        assert pool.acquire("k", now=0.0) is None
        assert pool.misses == 1

    def test_release_then_acquire_is_hit(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        inst = rt.instantiate(ContainerSpec(image="img"))
        assert pool.release(inst, now=0.0)
        got = pool.acquire(inst.key, now=10.0)
        assert got is inst
        assert pool.hits == 1
        assert got.warm_since is None

    def test_expiry_after_ttl(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        inst = rt.instantiate(ContainerSpec(image="img"))
        pool.release(inst, now=0.0)
        assert pool.acquire(inst.key, now=301.0) is None
        assert pool.expired == 1

    def test_ttl_zero_disables_warming(self):
        pool = WarmPool(ttl=0)
        rt = ContainerRuntime(seed=0)
        assert not pool.release(rt.instantiate(ContainerSpec(image="i")), now=0.0)
        assert pool.warm_count() == 0

    def test_lifo_reuse(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        first = rt.instantiate(ContainerSpec(image="i"))
        second = rt.instantiate(ContainerSpec(image="i"))
        pool.release(first, now=0.0)
        pool.release(second, now=1.0)
        assert pool.acquire(first.key, now=2.0) is second

    def test_capacity_cap(self):
        pool = WarmPool(ttl=300, capacity=1)
        rt = ContainerRuntime(seed=0)
        a = rt.instantiate(ContainerSpec(image="i"))
        b = rt.instantiate(ContainerSpec(image="i"))
        assert pool.release(a, now=0.0)
        assert not pool.release(b, now=0.0)

    def test_warm_keys(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        pool.release(rt.instantiate(ContainerSpec(image="a")), now=0.0)
        pool.release(rt.instantiate(ContainerSpec(image="b")), now=0.0)
        assert pool.warm_keys() == ("docker:a", "docker:b")

    def test_hit_rate(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        pool.acquire("docker:a", now=0.0)  # miss
        pool.release(rt.instantiate(ContainerSpec(image="a")), now=0.0)
        pool.acquire("docker:a", now=0.0)  # hit
        assert pool.hit_rate == 0.5

    def test_clear(self):
        pool = WarmPool(ttl=300)
        rt = ContainerRuntime(seed=0)
        pool.release(rt.instantiate(ContainerSpec(image="a")), now=0.0)
        assert pool.clear() == 1
        assert pool.warm_count() == 0
