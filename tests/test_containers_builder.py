"""Unit tests for dynamic container building and sharing (§4.2/§8)."""

from __future__ import annotations

import pytest

from repro.containers import BuildRequest, ContainerBuilder, ContainerTechnology


class TestBuildRequest:
    def test_from_requirements_strips_pins(self):
        req = BuildRequest.from_requirements(
            ["numpy==1.26", "scipy>=1.10", "Tomopy", "# comment"]
        )
        assert req.python_packages == frozenset({"numpy", "scipy", "tomopy"})

    def test_environment_hash_stable(self):
        a = BuildRequest(python_packages=frozenset({"numpy", "scipy"}))
        b = BuildRequest(python_packages=frozenset({"scipy", "numpy"}))
        assert a.environment_hash == b.environment_hash

    def test_environment_hash_distinguishes(self):
        a = BuildRequest(python_packages=frozenset({"numpy"}))
        b = BuildRequest(python_packages=frozenset({"numpy"}), gpu=True)
        c = BuildRequest(system_packages=frozenset({"numpy"}))
        assert len({a.environment_hash, b.environment_hash, c.environment_hash}) == 3

    def test_dockerfile_rendering(self):
        req = BuildRequest(
            python_packages=frozenset({"tomopy"}),
            system_packages=frozenset({"libhdf5"}),
        )
        dockerfile = req.render_dockerfile()
        assert dockerfile.startswith("FROM python:3.11-slim")
        assert "apt-get install -y libhdf5" in dockerfile
        assert "pip install funcx-worker" in dockerfile
        assert "pip install tomopy" in dockerfile


class TestContainerBuilder:
    def test_build_produces_docker_spec(self):
        builder = ContainerBuilder()
        spec = builder.build_for_function(["numpy", "torch"])
        assert spec.technology is ContainerTechnology.DOCKER
        assert spec.image.startswith("funcx/env-")
        assert spec.satisfies({"numpy", "torch"})
        assert builder.builds_performed == 1

    def test_identical_environment_cached(self):
        builder = ContainerBuilder()
        a = builder.build_for_function(["numpy==1.0"])
        b = builder.build_for_function(["numpy==2.0"])  # pin stripped
        assert a is b
        assert builder.builds_performed == 1
        assert builder.cache_hits == 1

    def test_dockerfile_recorded(self):
        builder = ContainerBuilder()
        spec = builder.build_for_function(["scipy"])
        dockerfile = builder.dockerfile_for(spec)
        assert dockerfile is not None and "scipy" in dockerfile
        assert builder.dockerfile_for(spec.convert(ContainerTechnology.SHIFTER)) is None

    def test_convert_for_site_cached(self):
        builder = ContainerBuilder()
        docker = builder.build_for_function(["numpy"])
        shifter1 = builder.convert_for_site(docker, ContainerTechnology.SHIFTER)
        shifter2 = builder.convert_for_site(docker, ContainerTechnology.SHIFTER)
        assert shifter1 is shifter2
        assert shifter1.technology is ContainerTechnology.SHIFTER
        assert shifter1.python_packages == docker.python_packages

    def test_convert_same_technology_identity(self):
        builder = ContainerBuilder()
        docker = builder.build_for_function(["numpy"])
        assert builder.convert_for_site(docker, ContainerTechnology.DOCKER) is docker


class TestContainerSharing:
    def test_find_satisfying_prefers_tightest(self):
        builder = ContainerBuilder()
        builder.build_for_function(["numpy"])
        fat = builder.build_for_function(["numpy", "scipy", "torch", "pandas"])
        lean = builder.build_for_function(["numpy", "scipy"])
        found = builder.find_satisfying(["numpy", "scipy"])
        assert found is lean
        assert builder.find_satisfying(["numpy", "torch"]) is fat

    def test_find_satisfying_none(self):
        builder = ContainerBuilder()
        builder.build_for_function(["numpy"])
        assert builder.find_satisfying(["tensorflow"]) is None

    def test_gpu_requirement_respected(self):
        builder = ContainerBuilder()
        builder.build(BuildRequest(python_packages=frozenset({"torch"})))
        assert builder.find_satisfying(["torch"], gpu=True) is None
        gpu_spec = builder.build(
            BuildRequest(python_packages=frozenset({"torch"}), gpu=True)
        )
        assert builder.find_satisfying(["torch"], gpu=True) is gpu_spec

    def test_build_or_share(self):
        builder = ContainerBuilder()
        first, shared1 = builder.build_or_share(["numpy", "scipy"])
        assert not shared1
        second, shared2 = builder.build_or_share(["numpy"])  # subset: share
        assert shared2 and second is first
        assert len(builder) == 1

    def test_build_or_share_builds_when_unsatisfied(self):
        builder = ContainerBuilder()
        builder.build_or_share(["numpy"])
        other, shared = builder.build_or_share(["tensorflow"])
        assert not shared
        assert len(builder) == 2
