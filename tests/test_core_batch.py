"""Unit tests for user-driven batching: partitioning and map results."""

from __future__ import annotations

import pytest

from repro.core.batch import MapResult, apply_batch, partition_iterator
from repro.core.futures import FuncXFuture
from repro.errors import TaskExecutionFailed
from repro.serialize.traceback import RemoteExceptionWrapper


class TestPartitionIterator:
    def test_batch_size(self):
        batches = list(partition_iterator(range(10), batch_size=3))
        assert batches == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_batch_size_exact_multiple(self):
        batches = list(partition_iterator(range(6), batch_size=3))
        assert batches == [[0, 1, 2], [3, 4, 5]]

    def test_batch_count(self):
        batches = list(partition_iterator(range(10), batch_count=4))
        assert len(batches) == 4
        assert sum(len(b) for b in batches) == 10

    def test_batch_count_takes_precedence(self):
        """Paper §4.7: batch_count takes precedence over batch_size."""
        batches = list(partition_iterator(range(100), batch_size=1, batch_count=2))
        assert len(batches) == 2

    def test_lazy_generator_input(self):
        def gen():
            yield from range(7)

        batches = list(partition_iterator(gen(), batch_size=4))
        assert batches == [[0, 1, 2, 3], [4, 5, 6]]

    def test_batch_count_on_sized_iterable_stays_lazy(self):
        # range supports length_hint: must not materialize.
        batches = partition_iterator(range(10**6), batch_count=10)
        first = next(batches)
        assert len(first) == 10**5

    def test_batch_count_on_generator_materializes(self):
        def gen():
            yield from range(9)

        batches = list(partition_iterator(gen(), batch_count=3))
        assert [len(b) for b in batches] == [3, 3, 3]

    def test_empty_input(self):
        assert list(partition_iterator([], batch_size=5)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            list(partition_iterator(range(3)))
        with pytest.raises(ValueError):
            list(partition_iterator(range(3), batch_size=0))
        with pytest.raises(ValueError):
            list(partition_iterator(range(3), batch_count=0))

    def test_no_empty_batches(self):
        for n in range(1, 20):
            for size in range(1, 8):
                assert all(partition_iterator(range(n), batch_size=size))


class TestApplyBatch:
    def test_bare_items(self):
        assert apply_batch(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_args_kwargs_items(self):
        def f(a, b=0):
            return a + b

        items = [((1,), {"b": 10}), ((2,), {})]
        assert apply_batch(f, items) == [11, 2]

    def test_failures_become_wrappers(self):
        def f(x):
            if x == 2:
                raise ValueError("bad item")
            return x

        out = apply_batch(f, [1, 2, 3])
        assert out[0] == 1 and out[2] == 3
        assert isinstance(out[1], RemoteExceptionWrapper)

    def test_empty(self):
        assert apply_batch(lambda x: x, []) == []


class TestMapResult:
    def _resolved(self, values_per_batch):
        futures, sizes = [], []
        for i, values in enumerate(values_per_batch):
            f = FuncXFuture(f"t{i}")
            f.set_result(values)
            futures.append(f)
            sizes.append(len(values))
        return MapResult(futures, sizes)

    def test_flattening_preserves_order(self):
        mr = self._resolved([[1, 2], [3], [4, 5, 6]])
        assert mr.result() == [1, 2, 3, 4, 5, 6]
        assert mr.total_items == 6
        assert mr.batch_count == 3

    def test_done(self):
        mr = self._resolved([[1]])
        assert mr.done()

    def test_item_failure_reraised(self):
        try:
            raise RuntimeError("item died")
        except RuntimeError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        mr = self._resolved([[1, wrapper]])
        with pytest.raises(RuntimeError, match="item died"):
            mr.result()

    def test_result_or_exceptions_keeps_partials(self):
        try:
            raise RuntimeError("x")
        except RuntimeError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        mr = self._resolved([[1, wrapper, 3]])
        out = mr.result_or_exceptions()
        assert out[0] == 1 and out[2] == 3
        assert isinstance(out[1], RemoteExceptionWrapper)

    def test_wrong_batch_shape_rejected(self):
        f = FuncXFuture("t")
        f.set_result("not-a-list")
        mr = MapResult([f], [3])
        with pytest.raises(TaskExecutionFailed):
            mr.result()

    def test_sizes_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MapResult([FuncXFuture("t")], [1, 2])

    def test_iterates_futures(self):
        mr = self._resolved([[1], [2]])
        assert len(list(mr)) == 2
