"""Unit tests for the forwarder: dispatch, heartbeats, requeue-on-loss.

The forwarder is stepped manually against a fake agent on the other end
of a channel, so every scenario is deterministic.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.auth import AuthService
from repro.core.forwarder import Forwarder
from repro.core.service import FuncXService
from repro.core.tasks import TaskState
from repro.serialize import FuncXSerializer
from repro.transport.channel import Channel
from repro.transport.messages import (
    Heartbeat,
    Registration,
    ResultMessage,
    TaskBatchMessage,
    TaskMessage,
)


def unwrap_tasks(messages):
    """Expand batch envelopes into per-task messages, bodies reattached."""
    tasks = []
    for message in messages:
        if isinstance(message, TaskBatchMessage):
            for task in message.tasks:
                buffer = task.function_buffer or message.function_buffers.get(
                    task.function_id, b"")
                tasks.append(replace(task, function_buffer=buffer))
        elif isinstance(message, TaskMessage):
            tasks.append(message)
    return tasks


@pytest.fixture
def world(clock):
    """service + forwarder + the agent's channel end."""
    service = FuncXService(auth=AuthService(clock=clock), clock=clock)
    identity = service.auth.register_identity("alice")
    token = service.auth.native_client_flow(identity).token
    _, ep_tok = service.auth.endpoint_client_flow("ep")
    endpoint_id = service.register_endpoint(ep_tok.token, name="ep")
    serializer = FuncXSerializer()

    def double(x):
        return 2 * x

    function_id = service.register_function(
        token, "double", serializer.serialize_function(double), public=True
    )
    channel = Channel(clock=clock)
    forwarder = Forwarder(
        service, endpoint_id, channel.left, heartbeat_period=1.0, heartbeat_grace=3
    )
    agent_end = channel.right

    class World:
        pass

    w = World()
    w.clock = clock
    w.service = service
    w.forwarder = forwarder
    w.agent = agent_end
    w.endpoint_id = endpoint_id
    w.function_id = function_id
    w.token = token
    w.serializer = serializer
    return w


def connect_agent(w):
    w.agent.send(Registration(sender="agent:x", component_type="endpoint"))
    w.forwarder.step()


def submit(w, value=1):
    payload = w.serializer.serialize(([value], {}))
    return w.service.submit(w.token, w.function_id, w.endpoint_id, payload)


class TestDispatch:
    def test_no_dispatch_until_agent_connects(self, world):
        submit(world)
        world.forwarder.step()
        assert world.agent.recv_all_ready() == []
        assert not world.forwarder.agent_connected

    def test_dispatch_after_registration(self, world):
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        messages = world.agent.recv_all_ready()
        assert len(messages) == 1
        (msg,) = unwrap_tasks(messages)
        assert msg.task_id == task_id
        assert msg.function_buffer  # function body travels in the envelope
        assert world.service.task_by_id(task_id).state is TaskState.DISPATCHED

    def test_dispatch_batch(self, world):
        ids = {submit(world, i) for i in range(10)}
        connect_agent(world)
        world.forwarder.step()
        messages = world.agent.recv_all_ready()
        assert len(messages) == 1  # ten tasks coalesced into one transfer
        got = {m.task_id for m in unwrap_tasks(messages)}
        assert got == ids
        assert world.forwarder.tasks_forwarded == 10

    def test_cancelled_task_not_dispatched(self, world):
        task_id = submit(world)
        task = world.service.task_by_id(task_id)
        task.advance(TaskState.CANCELLED, 0.0)
        connect_agent(world)
        world.forwarder.step()
        assert world.agent.recv_all_ready() == []


class TestResults:
    def test_result_completes_task(self, world):
        task_id = submit(world, 21)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        result_buf = world.serializer.serialize(42, routing_tag=task_id)
        world.agent.send(
            ResultMessage(
                sender="w0", task_id=task_id, success=True, result_buffer=result_buf,
                execution_time=0.1, completed_at=world.clock(),
            )
        )
        world.forwarder.step()
        assert world.service.task_by_id(task_id).state is TaskState.SUCCESS
        assert world.service.get_result(world.token, task_id) == result_buf
        assert world.forwarder.outstanding == 0

    def test_failure_result_records_traceback(self, world):
        from repro.serialize.traceback import RemoteExceptionWrapper

        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        try:
            raise ValueError("remote boom")
        except ValueError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        buf = world.serializer.serialize(wrapper, routing_tag=task_id)
        world.agent.send(
            ResultMessage(sender="w0", task_id=task_id, success=False,
                          result_buffer=buf, completed_at=world.clock())
        )
        world.forwarder.step()
        task = world.service.task_by_id(task_id)
        assert task.state is TaskState.FAILED
        assert "remote boom" in task.exception_text


class TestHeartbeatsAndLoss:
    def test_heartbeat_marks_endpoint_connected(self, world):
        connect_agent(world)
        world.agent.send(Heartbeat(sender="agent:x", timestamp=world.clock()))
        world.forwarder.step()
        record = world.service.endpoints.get(world.endpoint_id)
        assert record.connected

    def test_agent_loss_requeues_outstanding(self, world):
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        assert world.forwarder.outstanding == 1
        world.clock.advance(4.0)  # beyond period*grace = 3s
        world.forwarder.step()
        assert not world.forwarder.agent_connected
        task = world.service.task_by_id(task_id)
        assert task.state is TaskState.QUEUED
        assert len(world.service.task_queue(world.endpoint_id)) == 1
        assert world.forwarder.requeue_events == 1

    def test_redispatch_after_reconnection(self, world):
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        world.clock.advance(4.0)
        world.forwarder.step()  # loss detected, task requeued
        world.agent.send(Registration(sender="agent:x", component_type="endpoint"))
        world.forwarder.step()
        world.forwarder.step()
        redelivered = world.agent.recv_all_ready()
        assert [m.task_id for m in unwrap_tasks(redelivered)] == [task_id]
        assert world.service.task_by_id(task_id).attempts == 2

    def test_retry_budget_failure_after_repeated_loss(self, world):
        task_id = submit(world)
        world.service.task_by_id(task_id).max_retries = 1
        for _ in range(2):
            world.agent.send(Registration(sender="agent:x", component_type="endpoint"))
            world.forwarder.step()
            world.forwarder.step()
            world.agent.recv_all_ready()
            world.clock.advance(4.0)
            world.forwarder.step()
        task = world.service.task_by_id(task_id)
        assert task.state is TaskState.FAILED
        assert "retries exhausted" in task.exception_text

    def test_result_return_time_recorded(self, world):
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        completed_at = world.clock()
        world.clock.advance(0.5)
        world.agent.send(
            ResultMessage(sender="w", task_id=task_id, success=True,
                          result_buffer=world.serializer.serialize(1),
                          completed_at=completed_at)
        )
        world.forwarder.step()
        task = world.service.task_by_id(task_id)
        assert task.metadata["result_return_time"] == pytest.approx(0.5)


class TestSiteContainerConversion:
    """§4.2: a Docker-format key is converted to the site's technology."""

    def test_converted_for_shifter_site(self, world):
        record = world.service.endpoints.get(world.endpoint_id)
        record.metadata["container_technology"] = "shifter"
        payload = world.serializer.serialize(([1], {}))
        token = world.token
        fid = world.service.register_function(
            token, "containerized", world.serializer.serialize_function(lambda x: x),
            container_image="docker:dials/stills:1", public=True,
        )
        world.service.submit(token, fid, world.endpoint_id, payload)
        connect_agent(world)
        world.forwarder.step()
        (message,) = unwrap_tasks(world.agent.recv_all_ready())
        assert message.container_image == "shifter:dials/stills:1"

    def test_untouched_without_site_technology(self, world):
        payload = world.serializer.serialize(([1], {}))
        fid = world.service.register_function(
            world.token, "containerized",
            world.serializer.serialize_function(lambda x: x),
            container_image="docker:dials/stills:1", public=True,
        )
        world.service.submit(world.token, fid, world.endpoint_id, payload)
        connect_agent(world)
        world.forwarder.step()
        (message,) = unwrap_tasks(world.agent.recv_all_ready())
        assert message.container_image == "docker:dials/stills:1"

    def test_bare_tasks_unaffected(self, world):
        record = world.service.endpoints.get(world.endpoint_id)
        record.metadata["container_technology"] = "singularity"
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        (message,) = unwrap_tasks(world.agent.recv_all_ready())
        assert message.container_image is None


class TestDispatchBatching:
    def test_max_dispatch_per_step_bounds_each_iteration(self, world):
        world.forwarder.max_dispatch_per_step = 3
        for i in range(8):
            submit(world, i)
        connect_agent(world)  # performs one step -> first wave of 3
        first_wave = unwrap_tasks(world.agent.recv_all_ready())
        assert len(first_wave) == 3
        world.forwarder.step()
        world.forwarder.step()
        rest = unwrap_tasks(world.agent.recv_all_ready())
        assert len(rest) == 5


class TestFunctionBufferCache:
    """Batch dispatch ships each function body once and caches per agent."""

    def test_buffer_shipped_once_per_batch(self, world):
        for i in range(5):
            submit(world, i)
        connect_agent(world)
        world.forwarder.step()
        (envelope,) = [m for m in world.agent.recv_all_ready()
                       if isinstance(m, TaskBatchMessage)]
        assert len(envelope.tasks) == 5
        assert list(envelope.function_buffers) == [world.function_id]
        assert all(t.function_buffer == b"" for t in envelope.tasks)

    def test_buffer_cached_across_batches(self, world):
        submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        submit(world)
        world.forwarder.step()
        (envelope,) = [m for m in world.agent.recv_all_ready()
                       if isinstance(m, TaskBatchMessage)]
        assert envelope.function_buffers == {}  # agent already holds the body

    def test_reregistration_invalidates_cache(self, world):
        submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        connect_agent(world)  # the agent restarted and re-registered
        submit(world)
        world.forwarder.step()
        envelopes = [m for m in world.agent.recv_all_ready()
                     if isinstance(m, TaskBatchMessage)]
        assert any(world.function_id in e.function_buffers for e in envelopes)

    def test_redelivery_reships_buffer(self, world):
        submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        world.clock.advance(4.0)
        world.forwarder.step()  # loss detected, task requeued
        world.agent.send(Registration(sender="agent:x", component_type="endpoint"))
        world.forwarder.step()
        world.forwarder.step()
        (envelope,) = [m for m in world.agent.recv_all_ready()
                       if isinstance(m, TaskBatchMessage)]
        # deliveries > 1 forces the body back into the envelope
        assert world.function_id in envelope.function_buffers
