"""Unit tests for FuncXFuture."""

from __future__ import annotations

import threading

import pytest

from repro.core.futures import FuncXFuture, wait_all
from repro.errors import TaskCancelled, TaskExecutionFailed, TaskPending
from repro.serialize.traceback import RemoteExceptionWrapper


class TestResolution:
    def test_set_result(self):
        f = FuncXFuture("t")
        assert not f.done()
        f.set_result(42)
        assert f.done()
        assert f.result() == 42

    def test_set_exception(self):
        f = FuncXFuture("t")
        f.set_exception(ValueError("x"))
        with pytest.raises(ValueError):
            f.result()
        assert isinstance(f.exception(), ValueError)

    def test_double_resolution_rejected(self):
        f = FuncXFuture("t")
        f.set_result(1)
        with pytest.raises(RuntimeError):
            f.set_result(2)
        with pytest.raises(RuntimeError):
            f.set_exception(ValueError())

    def test_timeout_raises_pending(self):
        f = FuncXFuture("t")
        with pytest.raises(TaskPending):
            f.result(timeout=0.01)

    def test_remote_wrapper_reraised(self):
        f = FuncXFuture("t")
        try:
            raise KeyError("remote")
        except KeyError as exc:
            f.set_result(RemoteExceptionWrapper(exc))
        with pytest.raises(KeyError):
            f.result()
        assert isinstance(f.exception(), TaskExecutionFailed)

    def test_cancel(self):
        f = FuncXFuture("t")
        f.cancel()
        assert f.cancelled
        with pytest.raises(TaskCancelled):
            f.result()

    def test_cancel_after_done_is_noop(self):
        f = FuncXFuture("t")
        f.set_result(1)
        f.cancel()
        assert not f.cancelled
        assert f.result() == 1


class TestCallbacks:
    def test_callback_on_resolution(self):
        f = FuncXFuture("t")
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.task_id))
        f.set_result(1)
        assert seen == ["t"]

    def test_callback_fires_immediately_if_done(self):
        f = FuncXFuture("t")
        f.set_result(1)
        seen = []
        f.add_done_callback(lambda fut: seen.append(1))
        assert seen == [1]

    def test_callbacks_on_exception(self):
        f = FuncXFuture("t")
        seen = []
        f.add_done_callback(lambda fut: seen.append("done"))
        f.set_exception(ValueError())
        assert seen == ["done"]


class TestWaiting:
    def test_cross_thread_wait(self):
        f = FuncXFuture("t")

        def resolver():
            f.set_result("from-thread")

        t = threading.Thread(target=resolver)
        t.start()
        assert f.result(timeout=5.0) == "from-thread"
        t.join()

    def test_wait_all_success(self):
        futures = [FuncXFuture(str(i)) for i in range(3)]
        for f in futures:
            f.set_result(1)
        assert wait_all(futures, timeout=1.0)

    def test_wait_all_timeout(self):
        futures = [FuncXFuture("done"), FuncXFuture("never")]
        futures[0].set_result(1)
        assert not wait_all(futures, timeout=0.05)
