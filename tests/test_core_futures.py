"""Unit tests for FuncXFuture."""

from __future__ import annotations

import threading

import pytest

from repro.core.futures import FuncXFuture, wait_all
from repro.errors import TaskCancelled, TaskExecutionFailed, TaskPending
from repro.serialize.traceback import RemoteExceptionWrapper


class TestResolution:
    def test_set_result(self):
        f = FuncXFuture("t")
        assert not f.done()
        f.set_result(42)
        assert f.done()
        assert f.result() == 42

    def test_set_exception(self):
        f = FuncXFuture("t")
        f.set_exception(ValueError("x"))
        with pytest.raises(ValueError):
            f.result()
        assert isinstance(f.exception(), ValueError)

    def test_double_resolution_rejected(self):
        f = FuncXFuture("t")
        f.set_result(1)
        with pytest.raises(RuntimeError):
            f.set_result(2)
        with pytest.raises(RuntimeError):
            f.set_exception(ValueError())

    def test_timeout_raises_pending(self):
        f = FuncXFuture("t")
        with pytest.raises(TaskPending):
            f.result(timeout=0.01)

    def test_remote_wrapper_reraised(self):
        f = FuncXFuture("t")
        try:
            raise KeyError("remote")
        except KeyError as exc:
            f.set_result(RemoteExceptionWrapper(exc))
        with pytest.raises(KeyError):
            f.result()
        assert isinstance(f.exception(), TaskExecutionFailed)

    def test_cancel(self):
        f = FuncXFuture("t")
        assert f.cancel() is True
        assert f.cancelled
        with pytest.raises(TaskCancelled):
            f.result()

    def test_cancel_after_done_is_noop(self):
        f = FuncXFuture("t")
        f.set_result(1)
        assert f.cancel() is False
        assert not f.cancelled
        assert f.result() == 1


class TestCancelPropagation:
    def test_canceller_invoked_with_task_id(self):
        seen = []
        f = FuncXFuture("t-42")
        f.bind_canceller(seen.append)
        assert f.cancel() is True
        assert seen == ["t-42"]

    def test_canceller_not_invoked_when_already_done(self):
        seen = []
        f = FuncXFuture("t")
        f.bind_canceller(seen.append)
        f.set_result(1)
        assert f.cancel() is False
        assert seen == []

    def test_canceller_error_still_cancels_locally(self):
        def unreachable(_task_id):
            raise ConnectionError("service down")

        f = FuncXFuture("t")
        f.bind_canceller(unreachable)
        assert f.cancel() is True  # best-effort: local handle resolves
        assert f.cancelled

    def test_result_racing_cancel_wins(self):
        # The canceller's side effect resolves the future with a value
        # (the result beat the cancel upstream): cancel() must report
        # defeat and preserve the result.
        f = FuncXFuture("t")
        f.bind_canceller(lambda _tid: f.set_result("winner"))
        assert f.cancel() is False
        assert not f.cancelled
        assert f.result() == "winner"

    def test_own_cancellation_echo_still_counts(self):
        # The service publishes the CANCELLED transition and a pubsub
        # callback resolves the future with TaskCancelled before
        # cancel() re-acquires the lock — that is still our cancel.
        f = FuncXFuture("t")
        f.bind_canceller(
            lambda _tid: f.set_exception(TaskCancelled("echoed back")))
        assert f.cancel() is True
        assert f.cancelled
        with pytest.raises(TaskCancelled):
            f.result()


class TestCallbacks:
    def test_callback_on_resolution(self):
        f = FuncXFuture("t")
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.task_id))
        f.set_result(1)
        assert seen == ["t"]

    def test_callback_fires_immediately_if_done(self):
        f = FuncXFuture("t")
        f.set_result(1)
        seen = []
        f.add_done_callback(lambda fut: seen.append(1))
        assert seen == [1]

    def test_callbacks_on_exception(self):
        f = FuncXFuture("t")
        seen = []
        f.add_done_callback(lambda fut: seen.append("done"))
        f.set_exception(ValueError())
        assert seen == ["done"]


class TestCallbackIsolation:
    @pytest.fixture(autouse=True)
    def _reset_counters(self):
        saved_count = FuncXFuture.callback_errors
        saved_hook = FuncXFuture.callback_error_hook
        FuncXFuture.callback_errors = 0
        yield
        FuncXFuture.callback_errors = saved_count
        FuncXFuture.callback_error_hook = saved_hook

    def test_raising_callback_does_not_unwind_resolver(self):
        f = FuncXFuture("t")
        seen = []
        f.add_done_callback(lambda fut: (_ for _ in ()).throw(ValueError()))
        f.add_done_callback(lambda fut: seen.append("ran"))
        f.set_result(1)  # must not raise into the delivering thread
        assert seen == ["ran"]  # later callbacks still run
        assert f.result() == 1
        assert FuncXFuture.callback_errors == 1

    def test_raising_callback_on_immediate_fire(self):
        f = FuncXFuture("t")
        f.set_result(1)
        f.add_done_callback(lambda fut: (_ for _ in ()).throw(KeyError()))
        assert FuncXFuture.callback_errors == 1

    def test_error_hook_invoked(self):
        hooked = []
        FuncXFuture.callback_error_hook = (
            lambda fut, exc: hooked.append((fut.task_id, type(exc))))
        f = FuncXFuture("t")
        f.add_done_callback(lambda fut: (_ for _ in ()).throw(OSError()))
        f.set_exception(ValueError())
        assert hooked == [("t", OSError)]

    def test_broken_hook_does_not_cascade(self):
        FuncXFuture.callback_error_hook = (
            lambda fut, exc: (_ for _ in ()).throw(RuntimeError()))
        f = FuncXFuture("t")
        f.add_done_callback(lambda fut: (_ for _ in ()).throw(OSError()))
        f.set_result(1)  # neither the callback nor the hook may escape
        assert FuncXFuture.callback_errors == 1


class TestWaiting:
    def test_cross_thread_wait(self):
        f = FuncXFuture("t")

        def resolver():
            f.set_result("from-thread")

        t = threading.Thread(target=resolver)
        t.start()
        assert f.result(timeout=5.0) == "from-thread"
        t.join()

    def test_wait_all_success(self):
        futures = [FuncXFuture(str(i)) for i in range(3)]
        for f in futures:
            f.set_result(1)
        assert wait_all(futures, timeout=1.0)

    def test_wait_all_timeout(self):
        futures = [FuncXFuture("done"), FuncXFuture("never")]
        futures[0].set_result(1)
        assert not wait_all(futures, timeout=0.05)
