"""Unit tests for the memoizer (§4.7 / Table 3 machinery)."""

from __future__ import annotations

import pytest

from repro.core.memoization import Memoizer


class TestLookupStore:
    def test_miss_then_hit(self):
        memo = Memoizer()
        assert memo.lookup(b"func", b"args") is None
        memo.store(b"func", b"args", b"result")
        assert memo.lookup(b"func", b"args") == b"result"
        assert memo.hits == 1 and memo.misses == 1

    def test_key_depends_on_function_body(self):
        memo = Memoizer()
        memo.store(b"func-v1", b"args", b"r1")
        assert memo.lookup(b"func-v2", b"args") is None

    def test_key_depends_on_payload(self):
        memo = Memoizer()
        memo.store(b"f", b"args1", b"r1")
        assert memo.lookup(b"f", b"args2") is None

    def test_key_boundary_not_ambiguous(self):
        """func=ab,payload=c must differ from func=a,payload=bc."""
        memo = Memoizer()
        memo.store(b"ab", b"c", b"r")
        assert memo.lookup(b"a", b"bc") is None

    def test_overwrite_updates(self):
        memo = Memoizer()
        memo.store(b"f", b"a", b"old")
        memo.store(b"f", b"a", b"new")
        assert memo.lookup(b"f", b"a") == b"new"
        assert len(memo) == 1

    def test_deterministic_key(self):
        assert Memoizer.key(b"f", b"p") == Memoizer.key(b"f", b"p")
        assert Memoizer.key(b"f", b"p") != Memoizer.key(b"f", b"q")


class TestEviction:
    def test_lru_eviction_order(self):
        memo = Memoizer(capacity=2)
        memo.store(b"f", b"1", b"r1")
        memo.store(b"f", b"2", b"r2")
        memo.lookup(b"f", b"1")           # touch 1 -> 2 becomes LRU
        memo.store(b"f", b"3", b"r3")     # evicts 2
        assert memo.lookup(b"f", b"1") == b"r1"
        assert memo.lookup(b"f", b"2") is None
        assert memo.lookup(b"f", b"3") == b"r3"

    def test_capacity_enforced(self):
        memo = Memoizer(capacity=10)
        for i in range(50):
            memo.store(b"f", str(i).encode(), b"r")
        assert len(memo) == 10

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Memoizer(capacity=0)


class TestMaintenance:
    def test_invalidate_function_clears(self):
        memo = Memoizer()
        memo.store(b"f", b"a", b"r")
        memo.invalidate_function(b"f")
        assert memo.lookup(b"f", b"a") is None

    def test_hit_rate(self):
        memo = Memoizer()
        memo.store(b"f", b"a", b"r")
        memo.lookup(b"f", b"a")
        memo.lookup(b"f", b"b")
        assert memo.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert Memoizer().hit_rate == 0.0

    def test_clear_resets_counters(self):
        memo = Memoizer()
        memo.store(b"f", b"a", b"r")
        memo.lookup(b"f", b"a")
        memo.clear()
        assert len(memo) == 0 and memo.hits == 0 and memo.misses == 0
