"""Unit tests for the function and endpoint registries."""

from __future__ import annotations

import pytest

from repro.auth import AuthService
from repro.core.registry import EndpointRegistry, FunctionRegistry
from repro.errors import AuthorizationFailed, EndpointNotFound, FunctionNotFound


@pytest.fixture
def auth(clock):
    return AuthService(clock=clock)


@pytest.fixture
def alice(auth):
    return auth.register_identity("alice")


@pytest.fixture
def bob(auth):
    return auth.register_identity("bob")


class TestFunctionRegistry:
    def test_register_and_get(self, auth, alice):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("double", alice, b"body", description="x2")
        assert reg.get(record.function_id) is record
        assert record.version == 1
        assert len(reg) == 1

    def test_get_unknown(self, auth):
        with pytest.raises(FunctionNotFound):
            FunctionRegistry(auth=auth).get("nope")

    def test_owner_can_invoke(self, auth, alice):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b")
        assert reg.check_invocable(record.function_id, alice.identity_id) is record

    def test_private_function_denies_others(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b", public=False)
        with pytest.raises(AuthorizationFailed):
            reg.check_invocable(record.function_id, bob.identity_id)

    def test_public_function_open(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b", public=True)
        reg.check_invocable(record.function_id, bob.identity_id)

    def test_user_sharing(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b", allowed_users=[bob.identity_id])
        reg.check_invocable(record.function_id, bob.identity_id)

    def test_group_sharing(self, auth, alice, bob):
        group = auth.create_group("team", members=[bob])
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b", allowed_groups=[group.group_id])
        reg.check_invocable(record.function_id, bob.identity_id)

    def test_share_with_after_registration(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b")
        reg.share_with(record.function_id, alice, users=[bob.identity_id])
        reg.check_invocable(record.function_id, bob.identity_id)

    def test_only_owner_may_share(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"b")
        with pytest.raises(AuthorizationFailed):
            reg.share_with(record.function_id, bob, users=[bob.identity_id])

    def test_update_bumps_version_and_keeps_history(self, auth, alice):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"v1")
        reg.update_body(record.function_id, alice, b"v2")
        assert record.version == 2
        assert record.function_buffer == b"v2"
        assert record.history == [b"v1"]

    def test_only_owner_may_update(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        record = reg.register("f", alice, b"v1")
        with pytest.raises(AuthorizationFailed):
            reg.update_body(record.function_id, bob, b"evil")

    def test_owned_by(self, auth, alice, bob):
        reg = FunctionRegistry(auth=auth)
        reg.register("f1", alice, b"")
        reg.register("f2", alice, b"")
        reg.register("g", bob, b"")
        assert len(reg.owned_by(alice.identity_id)) == 2


class TestEndpointRegistry:
    def test_register_and_get(self, alice):
        reg = EndpointRegistry()
        record = reg.register("theta", alice, metadata={"nodes": 8})
        assert reg.get(record.endpoint_id).metadata["nodes"] == 8
        assert len(reg) == 1

    def test_get_unknown(self):
        with pytest.raises(EndpointNotFound):
            EndpointRegistry().get("nope")

    def test_private_endpoint_access(self, alice, bob):
        reg = EndpointRegistry()
        record = reg.register("laptop", alice, public=False)
        reg.check_usable(record.endpoint_id, alice.identity_id)
        with pytest.raises(AuthorizationFailed):
            reg.check_usable(record.endpoint_id, bob.identity_id)

    def test_allowed_users(self, alice, bob):
        reg = EndpointRegistry()
        record = reg.register("laptop", alice, public=False)
        record.allowed_users.add(bob.identity_id)
        reg.check_usable(record.endpoint_id, bob.identity_id)

    def test_connection_state(self, alice):
        reg = EndpointRegistry()
        record = reg.register("ep", alice)
        assert not record.connected
        reg.set_connected(record.endpoint_id, True, now=5.0)
        assert record.connected and record.last_heartbeat == 5.0
        reg.heartbeat(record.endpoint_id, now=9.0)
        assert record.last_heartbeat == 9.0
        reg.set_connected(record.endpoint_id, False)
        assert not record.connected

    def test_all_listing(self, alice):
        reg = EndpointRegistry()
        reg.register("a", alice)
        reg.register("b", alice)
        assert {r.name for r in reg.all()} == {"a", "b"}
