"""Tests for the REST facade (routing, status codes, payload encoding)."""

from __future__ import annotations

import base64

import pytest

from repro import LocalDeployment
from repro.core.rest import RestApi
from repro.serialize import FuncXSerializer


def b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


@pytest.fixture
def world():
    with LocalDeployment() as dep:
        api = RestApi(dep.service)
        identity = dep.register_user("rest-user")
        token = dep.auth.native_client_flow(identity).token
        ep_id = dep.create_endpoint("rest-ep", nodes=1)
        serializer = FuncXSerializer()

        def double(x):
            return 2 * x

        func_b64 = b64(serializer.serialize_function(double))
        yield dep, api, token, ep_id, serializer, func_b64


class TestAuthAndRouting:
    def test_missing_token_401(self, world):
        _dep, api, _token, _ep, _s, _f = world
        response = api.request("GET", "/api/v1/endpoints")
        assert response.status == 401

    def test_bad_token_401(self, world):
        _dep, api, _token, _ep, _s, _f = world
        response = api.request("GET", "/api/v1/endpoints", token="bogus")
        assert response.status == 401

    def test_unknown_route_404(self, world):
        _dep, api, token, _ep, _s, _f = world
        assert api.request("GET", "/api/v1/nothing", token=token).status == 404

    def test_wrong_method_404(self, world):
        _dep, api, token, _ep, _s, _f = world
        assert api.request("DELETE", "/api/v1/endpoints", token=token).status == 404

    def test_malformed_body_400(self, world):
        _dep, api, token, _ep, _s, _f = world
        response = api.request("POST", "/api/v1/functions", token=token, body={})
        assert response.status == 400


class TestFunctionRoutes:
    def test_register_and_update(self, world):
        _dep, api, token, _ep, serializer, func_b64 = world
        created = api.request(
            "POST", "/api/v1/functions", token=token,
            body={"name": "double", "function": func_b64},
        )
        assert created.status == 201
        fid = created.body["function_id"]

        def triple(x):
            return 3 * x

        updated = api.request(
            "PUT", f"/api/v1/functions/{fid}", token=token,
            body={"function": b64(serializer.serialize_function(triple))},
        )
        assert updated.status == 200
        assert updated.body["version"] == 2

    def test_update_unknown_function_404(self, world):
        _dep, api, token, _ep, _s, func_b64 = world
        response = api.request(
            "PUT", "/api/v1/functions/missing", token=token,
            body={"function": func_b64},
        )
        assert response.status == 404

    def test_oversized_function_413(self, world):
        dep, api, token, _ep, _s, _f = world
        big = b64(b"x" * (dep.service.config.payload_limit + 1))
        response = api.request(
            "POST", "/api/v1/functions", token=token,
            body={"name": "big", "function": big},
        )
        assert response.status == 413


class TestTaskRoutes:
    def _register(self, api, token, func_b64, public=True):
        return api.request(
            "POST", "/api/v1/functions", token=token,
            body={"name": "double", "function": func_b64, "public": public},
        ).body["function_id"]

    def test_full_rest_round_trip(self, world):
        _dep, api, token, ep_id, serializer, func_b64 = world
        fid = self._register(api, token, func_b64)
        payload = b64(serializer.serialize(([21], {})))
        submitted = api.request(
            "POST", "/api/v1/tasks", token=token,
            body={"function_id": fid, "endpoint_id": ep_id, "payload": payload},
        )
        assert submitted.status == 201
        tid = submitted.body["task_id"]

        result = api.request(
            "GET", f"/api/v1/tasks/{tid}/result", token=token,
            body={"timeout": 15.0},
        )
        assert result.status == 200
        value = serializer.deserialize(base64.b64decode(result.body["result"]))
        assert value == 42

        status = api.request("GET", f"/api/v1/tasks/{tid}/status", token=token)
        assert status.body["status"] == "success"

    def test_pending_result_202(self, world):
        dep, api, token, _ep, serializer, func_b64 = world
        lazy_ep = dep.create_endpoint("never-started", nodes=1, start=False)
        fid = self._register(api, token, func_b64)
        payload = b64(serializer.serialize(([1], {})))
        tid = api.request(
            "POST", "/api/v1/tasks", token=token,
            body={"function_id": fid, "endpoint_id": lazy_ep, "payload": payload},
        ).body["task_id"]
        response = api.request("GET", f"/api/v1/tasks/{tid}/result", token=token)
        assert response.status == 202
        assert response.body["task_id"] == tid

    def test_batch_submission(self, world):
        _dep, api, token, ep_id, serializer, func_b64 = world
        fid = self._register(api, token, func_b64)
        tasks = [
            {"function_id": fid, "endpoint_id": ep_id,
             "payload": b64(serializer.serialize(([i], {})))}
            for i in range(3)
        ]
        response = api.request("POST", "/api/v1/batch", token=token,
                               body={"tasks": tasks})
        assert response.status == 201
        assert len(response.body["task_ids"]) == 3
        for i, tid in enumerate(response.body["task_ids"]):
            result = api.request("GET", f"/api/v1/tasks/{tid}/result",
                                 token=token, body={"timeout": 15.0})
            assert serializer.deserialize(
                base64.b64decode(result.body["result"])
            ) == 2 * i

    def test_unknown_task_404(self, world):
        _dep, api, token, _ep, _s, _f = world
        assert api.request(
            "GET", "/api/v1/tasks/missing/status", token=token
        ).status == 404

    def test_unauthorized_function_403(self, world):
        dep, api, token, ep_id, serializer, func_b64 = world
        other = dep.register_user("other")
        other_token = dep.auth.native_client_flow(other).token
        api_other = RestApi(dep.service)
        fid = self._register(api, token, func_b64, public=False)
        response = api_other.request(
            "POST", "/api/v1/tasks", token=other_token,
            body={"function_id": fid, "endpoint_id": ep_id,
                  "payload": b64(serializer.serialize(([1], {})))},
        )
        assert response.status == 403


class TestEndpointRoutes:
    def test_list_endpoints(self, world):
        _dep, api, token, ep_id, _s, _f = world
        response = api.request("GET", "/api/v1/endpoints", token=token)
        assert response.status == 200
        ids = [e["endpoint_id"] for e in response.body["endpoints"]]
        assert ep_id in ids

    def test_register_endpoint_requires_scope(self, world):
        _dep, api, token, _ep, _s, _f = world
        # default user scopes do not include register_endpoint
        response = api.request("POST", "/api/v1/endpoints", token=token,
                               body={"name": "rogue"})
        assert response.status == 403

    def test_response_json_serializable(self, world):
        _dep, api, token, _ep, _s, _f = world
        response = api.request("GET", "/api/v1/endpoints", token=token)
        assert isinstance(response.json(), str)
        assert response.ok


class TestShardedErrorPaths:
    """Admission and shard failures mapped to HTTP statuses."""

    @staticmethod
    def _service(shards=1, admission=None):
        from repro.auth import AuthService
        from repro.core.service import FuncXService, ServiceConfig

        return FuncXService(
            auth=AuthService(),
            config=ServiceConfig(shards=shards),
            admission=admission,
        )

    @staticmethod
    def _setup(service):
        serializer = FuncXSerializer()
        identity = service.auth.register_identity("tenant")
        token = service.auth.native_client_flow(identity).token
        fid = service.register_function(
            token, "noop", serializer.serialize_function(lambda x: x),
            public=True)
        _eident, etok = service.auth.endpoint_client_flow("ep")
        ep = service.register_endpoint(etok.token, name="ep")
        payload = b64(serializer.serialize(([1], {})))
        return identity, token, fid, ep, payload

    def _submit_body(self, fid, ep, payload):
        return {"function_id": fid, "endpoint_id": ep, "payload": payload}

    def test_unknown_tenant_403_names_the_tenant(self):
        from repro.core.admission import AdmissionController

        service = self._service(admission=AdmissionController(strict=True))
        identity, token, fid, ep, payload = self._setup(service)
        api = RestApi(service)
        response = api.request("POST", "/api/v1/tasks", token=token,
                               body=self._submit_body(fid, ep, payload))
        assert response.status == 403
        assert response.body["tenant"] == identity.identity_id
        assert "no admission policy" in response.body["error"]

    def test_throttled_tenant_429_with_retry_after(self):
        from repro.core.admission import AdmissionController, TenantPolicy

        admission = AdmissionController()
        service = self._service(admission=admission)
        identity, token, fid, ep, payload = self._setup(service)
        admission.set_policy(identity.identity_id,
                             TenantPolicy(rate=0.5, burst=1.0))
        api = RestApi(service)
        body = self._submit_body(fid, ep, payload)
        assert api.request("POST", "/api/v1/tasks", token=token,
                           body=body).status == 201
        throttled = api.request("POST", "/api/v1/tasks", token=token, body=body)
        assert throttled.status == 429
        assert throttled.body["tenant"] == identity.identity_id
        assert throttled.body["retry_after"] == pytest.approx(2.0, rel=0.2)

    def test_quota_exceeded_429_on_batch(self):
        from repro.core.admission import AdmissionController, TenantPolicy

        admission = AdmissionController()
        service = self._service(admission=admission)
        identity, token, fid, ep, payload = self._setup(service)
        admission.set_policy(identity.identity_id,
                             TenantPolicy(max_outstanding=2))
        api = RestApi(service)
        response = api.request(
            "POST", "/api/v1/batch", token=token,
            body={"tasks": [self._submit_body(fid, ep, payload)] * 3})
        assert response.status == 429
        assert "quota" in response.body["error"]

    def test_draining_shard_503_with_retry_hint(self):
        service = self._service(shards=2)
        _identity, token, fid, ep, payload = self._setup(service)
        shard = service.shard_map.shard_for_endpoint(ep)
        service.drain_shard(shard)
        api = RestApi(service)
        response = api.request("POST", "/api/v1/tasks", token=token,
                               body=self._submit_body(fid, ep, payload))
        assert response.status == 503
        assert response.body["shard"] == shard
        assert response.body["retry"] is True
        service.restart_shard(shard)
        assert api.request("POST", "/api/v1/tasks", token=token,
                           body=self._submit_body(fid, ep, payload)).status == 201

    def test_batch_status_fans_out_across_shards(self):
        from repro.serialize import FuncXSerializer as _S

        service = self._service(shards=4)
        serializer = _S()
        identity = service.auth.register_identity("tenant")
        token = service.auth.native_client_flow(identity).token
        fid = service.register_function(
            token, "noop", serializer.serialize_function(lambda x: x),
            public=True)
        payload = serializer.serialize(([1], {}))
        task_ids, shards_seen = [], set()
        for i in range(12):
            _eident, etok = service.auth.endpoint_client_flow(f"ep-{i}")
            ep = service.register_endpoint(etok.token, name=f"ep-{i}")
            shards_seen.add(service.shard_map.shard_for_endpoint(ep))
            task_ids.append(service.submit(token, fid, ep, payload))
        assert len(shards_seen) > 1  # the fan-out is real
        service.complete_task(task_ids[0], success=True, result_buffer=b"r")

        api = RestApi(service)
        response = api.request("POST", "/api/v1/tasks/status", token=token,
                               body={"task_ids": task_ids})
        assert response.status == 200
        statuses = response.body["statuses"]
        assert set(statuses) == set(task_ids)
        assert statuses[task_ids[0]] == "success"
        assert statuses[task_ids[1]] == "queued"
        missing = api.request("POST", "/api/v1/tasks/status", token=token,
                              body={"task_ids": task_ids + ["ghost"]})
        assert missing.status == 404

    def test_client_wait_all_spans_shards(self):
        from repro.core.client import FuncXClient
        from repro.errors import TaskPending
        from repro.serialize import FuncXSerializer as _S

        service = self._service(shards=4)
        serializer = _S()
        identity = service.auth.register_identity("tenant")
        client = FuncXClient(service, identity)

        def echo(x):
            return x

        fid = client.register_function(echo)
        task_ids, shards_seen = [], set()
        for i in range(8):
            _eident, etok = service.auth.endpoint_client_flow(f"ep-{i}")
            ep = service.register_endpoint(etok.token, name=f"ep-{i}")
            shards_seen.add(service.shard_map.shard_for_endpoint(ep))
            task_ids.append(client.run(fid, ep, i))
        assert len(shards_seen) > 1
        for i, task_id in enumerate(task_ids):
            service.complete_task(task_id, success=True,
                                  result_buffer=serializer.serialize(i))
        assert client.wait_all(task_ids, timeout=5.0) == list(range(8))

        # one pending task on some shard -> TaskPending at the deadline
        _eident, etok = service.auth.endpoint_client_flow("ep-slow")
        slow_ep = service.register_endpoint(etok.token, name="ep-slow")
        pending = client.run(fid, slow_ep, 99)
        with pytest.raises(TaskPending):
            client.wait_all(task_ids + [pending], timeout=0.05, poll=0.01)
