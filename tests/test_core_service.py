"""Unit tests for the funcX web service (REST facade semantics)."""

from __future__ import annotations

import pytest

from repro.auth import AuthService, Scope
from repro.core.service import FuncXService, ServiceConfig
from repro.core.tasks import TaskState
from repro.errors import (
    AuthorizationFailed,
    PayloadTooLarge,
    TaskExecutionFailed,
    TaskNotFound,
    TaskPending,
)
from repro.serialize import FuncXSerializer


@pytest.fixture
def service(clock):
    return FuncXService(auth=AuthService(clock=clock), clock=clock)


@pytest.fixture
def user_token(service):
    identity = service.auth.register_identity("alice")
    return service.auth.native_client_flow(identity).token


@pytest.fixture
def ep_token(service):
    _identity, token = service.auth.endpoint_client_flow("test-ep")
    return token.token


@pytest.fixture
def endpoint_id(service, ep_token):
    return service.register_endpoint(ep_token, name="test-ep")


@pytest.fixture
def function_id(service, user_token):
    serializer = FuncXSerializer()

    def double(x):
        return 2 * x

    return service.register_function(
        user_token, "double", serializer.serialize_function(double), public=True
    )


def submit_one(service, user_token, function_id, endpoint_id, **kwargs):
    payload = FuncXSerializer().serialize(([1], {}))
    return service.submit(user_token, function_id, endpoint_id, payload, **kwargs)


class TestRegistration:
    def test_register_function_returns_uuid(self, function_id):
        assert len(function_id) == 36

    def test_function_stored_in_kv(self, service, function_id):
        assert service.store.hget("functions", function_id) is not None

    def test_register_requires_scope(self, service, endpoint_id):
        identity = service.auth.register_identity("weak")
        token = service.auth.native_client_flow(identity, scopes=[Scope.MONITOR]).token
        with pytest.raises(AuthorizationFailed):
            service.register_function(token, "f", b"body")

    def test_register_endpoint_allocates_queues(self, service, endpoint_id):
        assert service.task_queue(endpoint_id) is not None
        assert service.result_queue(endpoint_id) is not None

    def test_endpoint_token_cannot_execute(self, service, ep_token, function_id, endpoint_id):
        with pytest.raises(AuthorizationFailed):
            service.submit(ep_token, function_id, endpoint_id, b"")

    def test_oversized_function_rejected(self, service, user_token):
        config = service.config
        with pytest.raises(PayloadTooLarge):
            service.register_function(
                user_token, "big", b"x" * (config.payload_limit + 1)
            )

    def test_update_function_bumps_version(self, service, user_token, function_id):
        version = service.update_function(user_token, function_id, b"new body")
        assert version == 2


class TestSubmission:
    def test_submit_queues_task(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        task = service.task_by_id(task_id)
        assert task.state is TaskState.QUEUED
        assert len(service.task_queue(endpoint_id)) == 1

    def test_submit_unknown_function(self, service, user_token, endpoint_id):
        from repro.errors import FunctionNotFound

        with pytest.raises(FunctionNotFound):
            service.submit(user_token, "missing", endpoint_id, b"")

    def test_submit_unknown_endpoint(self, service, user_token, function_id):
        from repro.errors import EndpointNotFound

        with pytest.raises(EndpointNotFound):
            service.submit(user_token, function_id, "missing", b"")

    def test_oversized_payload_rejected(self, service, user_token, function_id, endpoint_id):
        with pytest.raises(PayloadTooLarge):
            service.submit(
                user_token, function_id, endpoint_id,
                b"x" * (service.config.payload_limit + 1),
            )

    def test_private_function_authorization(self, service, user_token, endpoint_id):
        owner = service.auth.register_identity("owner")
        owner_token = service.auth.native_client_flow(owner).token
        fid = service.register_function(owner_token, "priv", b"body", public=False)
        with pytest.raises(AuthorizationFailed):
            submit_one(service, user_token, fid, endpoint_id)

    def test_batch_submission(self, service, user_token, function_id, endpoint_id):
        payload = FuncXSerializer().serialize(([2], {}))
        ids = service.submit_batch(
            user_token, [(function_id, endpoint_id, payload)] * 5
        )
        assert len(ids) == len(set(ids)) == 5
        assert len(service.task_queue(endpoint_id)) == 5

    def test_counters(self, service, user_token, function_id, endpoint_id):
        submit_one(service, user_token, function_id, endpoint_id)
        assert service.tasks_received == 1
        assert service.outstanding_tasks(endpoint_id) == 1


class TestCompletionAndResults:
    def test_complete_and_get_result(self, service, user_token, function_id, endpoint_id, clock):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.mark_dispatched(task_id)
        service.mark_running(task_id)
        result_buf = FuncXSerializer().serialize(42, routing_tag=task_id)
        service.complete_task(task_id, success=True, result_buffer=result_buf,
                              execution_time=0.5)
        assert service.status(user_token, task_id) is TaskState.SUCCESS
        assert service.get_result(user_token, task_id) == result_buf

    def test_result_before_completion_raises_pending(
        self, service, user_token, function_id, endpoint_id
    ):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        with pytest.raises(TaskPending):
            service.get_result(user_token, task_id)

    def test_failed_task_raises(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.mark_dispatched(task_id)
        service.complete_task(task_id, success=False, exception_text="ZeroDivisionError")
        with pytest.raises(TaskExecutionFailed, match="ZeroDivisionError"):
            service.get_result(user_token, task_id)

    def test_unknown_task(self, service, user_token):
        with pytest.raises(TaskNotFound):
            service.status(user_token, "missing")

    def test_result_purged_after_ttl(self, service, user_token, function_id, endpoint_id, clock):
        config = service.config
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.mark_dispatched(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        service.get_result(user_token, task_id)  # retrieval arms the TTL
        clock.advance(config.result_ttl + 1)
        assert service.purge() >= 1
        assert not service.store.exists(f"result:{task_id}")

    def test_completion_publishes(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        seen = []
        service.pubsub.subscribe(f"task.{task_id}", lambda _t, m: seen.append(m))
        service.mark_dispatched(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        assert seen == ["success"]

    def test_task_info(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        info = service.task_info(user_token, task_id)
        assert info["task_id"] == task_id
        assert info["state"] == "queued"


class TestMemoization:
    def test_memo_hit_completes_immediately(
        self, service, user_token, function_id, endpoint_id
    ):
        t1 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        service.mark_dispatched(t1)
        result = FuncXSerializer().serialize(2, routing_tag=t1)
        service.complete_task(t1, success=True, result_buffer=result)
        # identical function+payload: hit, never queued
        t2 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        task2 = service.task_by_id(t2)
        assert task2.state is TaskState.SUCCESS
        assert task2.memo_hit
        assert service.memo_completions == 1

    def test_memoize_off_by_default(self, service, user_token, function_id, endpoint_id):
        t1 = submit_one(service, user_token, function_id, endpoint_id)
        service.mark_dispatched(t1)
        service.complete_task(t1, success=True, result_buffer=b"r")
        t2 = submit_one(service, user_token, function_id, endpoint_id)
        assert service.task_by_id(t2).state is TaskState.QUEUED

    def test_failures_not_memoized(self, service, user_token, function_id, endpoint_id):
        t1 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        service.mark_dispatched(t1)
        service.complete_task(t1, success=False, exception_text="boom")
        t2 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        assert service.task_by_id(t2).state is TaskState.QUEUED


class TestRequeue:
    def test_requeue_rolls_back_state(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        queue = service.task_queue(endpoint_id)
        lease = queue.lease()
        service.mark_dispatched(task_id)
        assert service.requeue_task(task_id, reason="endpoint lost", enqueue=False)
        queue.nack(lease.lease_id)
        task = service.task_by_id(task_id)
        assert task.state is TaskState.QUEUED
        assert task.metadata["requeue_reasons"] == ["endpoint lost"]

    def test_retry_budget_enforced(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id,
                             max_retries=1)
        # attempt 1
        service.mark_dispatched(task_id)
        assert service.requeue_task(task_id, reason="lost")
        # attempt 2
        service.mark_dispatched(task_id)
        assert not service.requeue_task(task_id, reason="lost again")
        task = service.task_by_id(task_id)
        assert task.state is TaskState.FAILED
        assert "retries exhausted" in task.exception_text

    def test_requeue_terminal_is_noop(self, service, user_token, function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.mark_dispatched(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        assert not service.requeue_task(task_id)


class TestServiceConfig:
    def test_request_overhead_applied(self, clock):
        slept = []
        service = FuncXService(
            auth=AuthService(clock=clock),
            config=ServiceConfig(request_overhead=0.05),
            clock=clock,
            sleeper=lambda s: slept.append(s),
        )
        identity = service.auth.register_identity("a")
        token = service.auth.native_client_flow(identity).token
        service.register_function(token, "f", b"body")
        assert slept == [0.05]


class TestUpdateInvalidation:
    def test_update_function_invalidates_memo_cache(
        self, service, user_token, function_id, endpoint_id
    ):
        # seed a memoized result for the old body
        t1 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        service.mark_dispatched(t1)
        service.complete_task(t1, success=True, result_buffer=b"old-result")
        assert len(service.memoizer) == 1
        # updating the function must drop stale cached results
        service.update_function(user_token, function_id, b"brand new body")
        t2 = submit_one(service, user_token, function_id, endpoint_id, memoize=True)
        from repro.core.tasks import TaskState

        assert service.task_by_id(t2).state is TaskState.QUEUED  # miss, not hit
