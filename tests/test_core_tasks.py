"""Unit tests for the task lifecycle state machine."""

from __future__ import annotations

import pytest

from repro.core.tasks import Task, TaskState


def fresh_task(**kwargs) -> Task:
    return Task(function_id="f", endpoint_id="e", **kwargs)


class TestTransitions:
    def test_happy_path(self):
        task = fresh_task()
        task.state_times["received"] = 0.0
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.DISPATCHED, 2.0)
        task.advance(TaskState.RUNNING, 3.0)
        task.advance(TaskState.SUCCESS, 4.0)
        assert task.state is TaskState.SUCCESS
        assert task.state.terminal

    def test_illegal_transition_rejected(self):
        task = fresh_task()
        with pytest.raises(ValueError):
            task.advance(TaskState.RUNNING, 1.0)  # received -> running skips queue

    def test_terminal_states_frozen(self):
        task = fresh_task()
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.DISPATCHED, 2.0)
        task.advance(TaskState.RUNNING, 3.0)
        task.advance(TaskState.SUCCESS, 4.0)
        with pytest.raises(ValueError):
            task.advance(TaskState.QUEUED, 5.0)

    def test_requeue_from_dispatched(self):
        task = fresh_task()
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.DISPATCHED, 2.0)
        task.advance(TaskState.QUEUED, 3.0)  # endpoint lost; requeued
        assert task.state is TaskState.QUEUED

    def test_requeue_from_running(self):
        task = fresh_task()
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.DISPATCHED, 2.0)
        task.advance(TaskState.RUNNING, 3.0)
        task.advance(TaskState.QUEUED, 4.0)
        assert task.state is TaskState.QUEUED

    def test_cancel_from_queue(self):
        task = fresh_task()
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.CANCELLED, 2.0)
        assert task.state.terminal

    def test_queued_times_audit(self):
        task = fresh_task()
        task.advance(TaskState.QUEUED, 1.0)
        task.advance(TaskState.DISPATCHED, 2.0)
        task.advance(TaskState.QUEUED, 3.0)
        assert task.metadata["queued_times"] == [1.0, 3.0]


class TestLatencyAccounting:
    def _completed_task(self) -> Task:
        task = fresh_task()
        task.state_times["received"] = 10.0
        task.advance(TaskState.QUEUED, 10.5)
        task.advance(TaskState.DISPATCHED, 11.0)
        task.advance(TaskState.RUNNING, 11.2)
        task.advance(TaskState.SUCCESS, 12.2)
        return task

    def test_total_latency(self):
        assert self._completed_task().total_latency() == pytest.approx(2.2)

    def test_total_latency_incomplete_is_none(self):
        task = fresh_task()
        task.state_times["received"] = 0.0
        assert task.total_latency() is None

    def test_breakdown_stages(self):
        bd = self._completed_task().breakdown()
        assert bd["ts"] == pytest.approx(0.5)
        assert bd["tf"] == pytest.approx(0.5)
        assert bd["te"] == pytest.approx(0.2)
        assert bd["tw"] == pytest.approx(1.0)

    def test_breakdown_includes_result_return(self):
        task = self._completed_task()
        task.metadata["result_return_time"] = 0.3
        assert task.breakdown()["te"] == pytest.approx(0.5)

    def test_stage_time_lookup(self):
        task = self._completed_task()
        assert task.stage_time(TaskState.RUNNING) == 11.2
        assert task.stage_time(TaskState.FAILED) is None


class TestRecordsAndRetries:
    def test_to_record_roundtrippable_fields(self):
        task = fresh_task(owner_id="alice", container_image="docker:x")
        record = task.to_record()
        assert record["function_id"] == "f"
        assert record["endpoint_id"] == "e"
        assert record["owner_id"] == "alice"
        assert record["container_image"] == "docker:x"
        assert record["state"] == "received"

    def test_unique_task_ids(self):
        assert fresh_task().task_id != fresh_task().task_id

    def test_retries_remaining(self):
        task = fresh_task(max_retries=2)
        assert task.retries_remaining == 2
        task.attempts = 1
        assert task.retries_remaining == 2
        task.attempts = 2
        assert task.retries_remaining == 1
        task.attempts = 3
        assert task.retries_remaining == 0
