"""Tests for the dispatch/result-path hardening fixes.

Covers the four satellite bugfixes of this change:

* orphaned queue entries no longer strand the dispatch batch (the
  ``TaskNotFound`` lease leak);
* stale-incarnation heartbeats cannot revive a reconnected agent's
  previous lifetime;
* duplicate results never mutate an already-terminal task;
* ``submit_batch`` validates the whole batch before enqueueing anything;

plus a chaos run asserting invariant violations are stamped with the
observability trace ids of the tasks involved.
"""

from __future__ import annotations

import pytest

from repro.auth import AuthService
from repro.core.forwarder import Forwarder
from repro.core.service import FuncXService
from repro.core.tasks import TaskState
from repro.errors import PayloadTooLarge
from repro.serialize import FuncXSerializer
from repro.transport.channel import Channel
from repro.transport.messages import Heartbeat, Registration, ResultMessage


@pytest.fixture
def world(clock):
    """service + forwarder + the agent's channel end."""
    service = FuncXService(auth=AuthService(clock=clock), clock=clock)
    identity = service.auth.register_identity("alice")
    token = service.auth.native_client_flow(identity).token
    _, ep_tok = service.auth.endpoint_client_flow("ep")
    endpoint_id = service.register_endpoint(ep_tok.token, name="ep")
    serializer = FuncXSerializer()

    def double(x):
        return 2 * x

    function_id = service.register_function(
        token, "double", serializer.serialize_function(double), public=True
    )
    channel = Channel(clock=clock)
    forwarder = Forwarder(
        service, endpoint_id, channel.left, heartbeat_period=1.0, heartbeat_grace=3
    )
    agent_end = channel.right

    class World:
        pass

    w = World()
    w.clock = clock
    w.service = service
    w.forwarder = forwarder
    w.agent = agent_end
    w.endpoint_id = endpoint_id
    w.function_id = function_id
    w.token = token
    w.serializer = serializer
    return w


def connect_agent(w, incarnation=1):
    w.agent.send(Registration(sender="agent:x", component_type="endpoint",
                              incarnation=incarnation))
    w.forwarder.step()


def submit(w, value=1):
    payload = w.serializer.serialize(([value], {}))
    return w.service.submit(w.token, w.function_id, w.endpoint_id, payload)


def complete(w, task_id, value=42):
    buf = w.serializer.serialize(value, routing_tag=task_id)
    w.agent.send(ResultMessage(
        sender="w0", task_id=task_id, success=True, result_buffer=buf,
        execution_time=0.1, completed_at=w.clock(),
    ))
    w.forwarder.step()
    return buf


class TestOrphanLeases:
    """Satellite 1: a purged task id in the queue must not leak its lease
    or strand the rest of the dispatch batch."""

    def test_forgotten_task_lease_is_acked(self, world):
        task_id = submit(world)
        assert world.service.forget_task(task_id)
        connect_agent(world)
        world.forwarder.step()
        assert world.agent.recv_all_ready() == []  # nothing dispatched
        assert world.forwarder.outstanding == 0
        assert world.forwarder.orphan_leases == 1
        queue = world.service.task_queue(world.endpoint_id)
        assert queue.conservation_delta() == 0
        assert len(queue) == 0  # the orphan id is gone for good

    def test_orphan_mid_batch_does_not_strand_later_tasks(self, world):
        first = submit(world, 1)
        victim = submit(world, 2)
        last = submit(world, 3)
        assert world.service.forget_task(victim)
        connect_agent(world)
        world.forwarder.step()
        from test_core_forwarder import unwrap_tasks
        got = {m.task_id for m in unwrap_tasks(world.agent.recv_all_ready())}
        assert got == {first, last}  # batch continued past the orphan
        assert world.forwarder.tasks_forwarded == 2
        assert world.forwarder.orphan_leases == 1
        queue = world.service.task_queue(world.endpoint_id)
        assert queue.conservation_delta() == 0

    def test_forget_unknown_task_returns_false(self, world):
        assert not world.service.forget_task("no-such-task")

    def test_result_for_forgotten_task_is_absorbed(self, world):
        task_id = submit(world)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        world.service.forget_task(task_id)
        complete(world, task_id)  # must not raise out of the step
        assert world.forwarder.orphan_leases == 1
        assert world.forwarder.results_returned == 0


class TestStaleIncarnations:
    """Satellite 2: heartbeats from a superseded agent lifetime must not
    revive the connection (their tasks were already requeued)."""

    def _lose_agent(self, world):
        world.clock.advance(10.0)  # > period * grace
        world.forwarder.step()
        assert not world.forwarder.agent_connected

    def test_stale_beat_does_not_revive(self, world):
        connect_agent(world, incarnation=1)
        self._lose_agent(world)
        connect_agent(world, incarnation=2)  # agent came back, new lifetime
        self._lose_agent(world)
        # a delayed beat from lifetime 1 arrives after lifetime 2 died
        world.agent.send(Heartbeat(sender="agent:x", timestamp=world.clock(),
                                   incarnation=1))
        world.forwarder.step()
        assert not world.forwarder.agent_connected
        assert world.forwarder.stale_beats == 1

    def test_current_incarnation_beat_still_revives(self, world):
        connect_agent(world, incarnation=1)
        self._lose_agent(world)
        # flap back via heartbeat (same lifetime) — must stay legal
        world.agent.send(Heartbeat(sender="agent:x", timestamp=world.clock(),
                                   incarnation=1))
        world.forwarder.step()
        assert world.forwarder.agent_connected
        assert world.forwarder.stale_beats == 0

    def test_stale_registration_is_ignored(self, world):
        connect_agent(world, incarnation=5)
        assert world.forwarder.agent_connected
        incarnation_before = world.forwarder.incarnation
        connect_agent(world, incarnation=3)  # delayed replay of an old one
        assert world.forwarder.incarnation == incarnation_before

    def test_untagged_beats_keep_working(self, world):
        # incarnation=0 means "sender does not track incarnations"
        connect_agent(world, incarnation=0)
        self._lose_agent(world)
        world.agent.send(Heartbeat(sender="agent:x", timestamp=world.clock()))
        world.forwarder.step()
        assert world.forwarder.agent_connected


class TestDuplicateResults:
    """Satellite 3: the first result wins; a redelivered duplicate must
    not mutate the recorded outcome."""

    def test_duplicate_result_does_not_mutate(self, world):
        task_id = submit(world, 21)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        first_buf = complete(world, task_id, value=42)
        task = world.service.task_by_id(task_id)
        assert task.state is TaskState.SUCCESS
        return_time = task.metadata["result_return_time"]

        world.clock.advance(5.0)
        duplicate_buf = world.serializer.serialize(-1, routing_tag=task_id)
        world.agent.send(ResultMessage(
            sender="w1", task_id=task_id, success=False,
            result_buffer=duplicate_buf, execution_time=9.9,
            completed_at=world.clock(),
        ))
        world.forwarder.step()

        assert task.state is TaskState.SUCCESS
        assert task.result_buffer == first_buf
        assert task.metadata["result_return_time"] == return_time
        assert task.metadata["execution_time"] == pytest.approx(0.1)
        assert world.service.tasks_completed == 1
        assert world.service.duplicate_results == 1
        assert world.forwarder.results_returned == 1
        assert world.forwarder.duplicate_results == 1

    def test_duplicate_does_not_poison_memo(self, world):
        payload = world.serializer.serialize(([21], {}))
        task_id = world.service.submit(world.token, world.function_id,
                                       world.endpoint_id, payload, memoize=True)
        connect_agent(world)
        world.forwarder.step()
        world.agent.recv_all_ready()
        good = complete(world, task_id, value=42)

        # duplicate with different bytes must not overwrite the memo entry
        bad = world.serializer.serialize(-1, routing_tag=task_id)
        world.agent.send(ResultMessage(
            sender="w1", task_id=task_id, success=True, result_buffer=bad,
            execution_time=0.1, completed_at=world.clock(),
        ))
        world.forwarder.step()

        memo_task = world.service.submit(world.token, world.function_id,
                                         world.endpoint_id, payload, memoize=True)
        assert world.service.task_by_id(memo_task).memo_hit
        assert world.service.get_result(world.token, memo_task) == good


class TestAtomicBatchValidation:
    """Satellite 4: a rejected batch member must reject the whole batch
    before any task is enqueued."""

    def test_oversized_member_rejects_whole_batch(self, world):
        ok_payload = world.serializer.serialize(([1], {}))
        huge = b"x" * (world.service.config.payload_limit + 1)
        received_before = world.service.tasks_received
        with pytest.raises(PayloadTooLarge):
            world.service.submit_batch(world.token, [
                (world.function_id, world.endpoint_id, ok_payload),
                (world.function_id, world.endpoint_id, huge),
            ])
        assert world.service.tasks_received == received_before
        assert len(world.service.task_queue(world.endpoint_id)) == 0
        assert world.service.iter_tasks() == []

    def test_valid_batch_still_enqueues_all(self, world):
        payloads = [world.serializer.serialize(([i], {})) for i in range(3)]
        ids = world.service.submit_batch(world.token, [
            (world.function_id, world.endpoint_id, p) for p in payloads
        ])
        assert len(ids) == 3
        assert world.service.tasks_received == 3
        assert len(world.service.task_queue(world.endpoint_id)) == 3


class TestChaosTraceStamping:
    """Invariant violations name the trace ids of the tasks involved."""

    def test_violation_carries_trace_id(self, chaos_world):
        world = chaos_world(seed=3)
        world.add_endpoint("ep")
        client = world.client()

        def inc(x):
            return x + 1

        fid = client.register_function(inc)
        task_id = client.run(fid, world.endpoint_id("ep"), 1)
        assert client.wait_for(task_id, timeout=30) == 2

        # Forge a second terminal completion for the same task: the
        # no-double-completion invariant must trip and the violation must
        # point at the task's trace.
        world.registry.dispatch("service", "task.completed",
                                {"task_id": task_id, "success": True})
        violations = [v for v in world.registry.violations
                      if v.invariant == "no-double-completion"]
        assert violations, "forged duplicate completion did not trip"
        expected = world.deployment.service.traces.trace_id_for(task_id)
        assert expected is not None
        for violation in violations:
            assert expected in violation.trace_ids
            assert expected in violation.describe()
