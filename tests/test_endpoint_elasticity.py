"""Tests for the resource-aware scheduler and live elasticity controller."""

from __future__ import annotations

import time

import pytest

from repro import EndpointConfig, LocalDeployment
from repro.endpoint.scheduling import (
    ManagerView,
    ResourceAwareScheduler,
    scheduler_by_name,
)
from repro.providers import LocalProvider, ProviderLimits, SimpleScalingStrategy
from repro.endpoint.elasticity import ElasticityController


def view(mid, capacity, outstanding=0, containers=()):
    return ManagerView(
        manager_id=mid,
        capacity=capacity,
        outstanding=outstanding,
        deployed_containers=frozenset(containers),
    )


class TestResourceAwareScheduler:
    def test_registered(self):
        assert isinstance(scheduler_by_name("resource_aware"), ResourceAwareScheduler)

    def test_picks_least_loaded(self):
        s = ResourceAwareScheduler(seed=1)
        managers = [view("busy", 10, outstanding=8), view("idle", 10, outstanding=1)]
        assert all(
            s.select(managers, None).manager_id == "idle" for _ in range(10)
        )

    def test_normalizes_by_capacity(self):
        s = ResourceAwareScheduler(seed=1)
        # big: 10/64 load; small: 1/2 load -> big wins despite more tasks
        managers = [view("big", 64, outstanding=10), view("small", 2, outstanding=1)]
        assert s.select(managers, None).manager_id == "big"

    def test_container_affinity_first(self):
        s = ResourceAwareScheduler(seed=1)
        managers = [
            view("empty", 10, outstanding=0),
            view("warm-but-busy", 10, outstanding=5, containers=["docker:x"]),
        ]
        assert s.select(managers, "docker:x").manager_id == "warm-but-busy"

    def test_none_when_saturated(self):
        s = ResourceAwareScheduler(seed=1)
        assert s.select([view("m", 2, outstanding=2)], None) is None

    def test_balances_over_sequence(self):
        s = ResourceAwareScheduler(seed=1)
        managers = [view("a", 10), view("b", 10)]
        for _ in range(10):
            chosen = s.select(managers, None)
            chosen.outstanding += 1
        assert managers[0].outstanding == managers[1].outstanding == 5


class TestElasticityController:
    def _world(self, max_blocks=3, min_blocks=0):
        dep = LocalDeployment()
        client = dep.client()
        ep_id = dep.create_endpoint(
            "elastic-ep", nodes=0,
            config=EndpointConfig(workers_per_node=2, heartbeat_period=0.1),
        )
        endpoint = dep.endpoint(ep_id)
        provider = LocalProvider(
            max_nodes=max_blocks + 1,
            limits=ProviderLimits(min_blocks=min_blocks, max_blocks=max_blocks,
                                  init_blocks=min_blocks),
        )
        strategy = SimpleScalingStrategy(
            max_units_per_image=max_blocks,
            min_units_per_image=min_blocks,
            tasks_per_unit=2,
            idle_grace=0.2,
        )
        controller = ElasticityController(
            endpoint, provider=provider, strategy=strategy
        )
        return dep, client, ep_id, endpoint, controller

    def test_requires_provider(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("no-provider", nodes=1)
            with pytest.raises(ValueError):
                ElasticityController(dep.endpoint(ep_id))

    def test_scales_out_under_load_and_back(self):
        dep, client, ep_id, endpoint, controller = self._world()
        try:
            import repro.workloads as w

            fid = client.register_function(w.make_sleep_function(0.3), public=True)
            futures = [client.submit(fid, ep_id) for _ in range(6)]
            # drive the control loop manually until managers exist
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and controller.active_managers < 3:
                controller.step()
                time.sleep(0.02)
            assert controller.active_managers >= 1
            assert controller.scale_out_events >= 1
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not all(f.done() for f in futures):
                controller.step()
                time.sleep(0.05)
            for future in futures:
                assert future.result(timeout=5) == 0.3
            # drain, then idle-grace scale-in reclaims everything
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and controller.active_managers > 0:
                controller.step()
                time.sleep(0.05)
            assert controller.active_managers == 0
            assert controller.scale_in_events >= 1
        finally:
            dep.shutdown()

    def test_respects_max_blocks(self):
        dep, client, ep_id, endpoint, controller = self._world(max_blocks=2)
        try:
            import repro.workloads as w

            fid = client.register_function(w.make_sleep_function(0.2), public=True)
            futures = [client.submit(fid, ep_id) for _ in range(20)]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                controller.step()
                assert controller.provider.active_blocks <= 2
                if all(f.done() for f in futures):
                    break
                time.sleep(0.02)
            for f in futures:
                assert f.result(timeout=30) == 0.2
        finally:
            dep.shutdown()

    def test_threaded_mode(self):
        dep, client, ep_id, endpoint, controller = self._world()
        try:
            controller.evaluation_period = 0.05
            controller.start()
            fid = client.register_function(lambda x: x + 1, public=True)
            futures = [client.submit(fid, ep_id, i) for i in range(4)]
            assert [f.result(timeout=30) for f in futures] == [1, 2, 3, 4]
            controller.stop()
        finally:
            controller.stop()
            dep.shutdown()
