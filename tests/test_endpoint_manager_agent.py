"""Unit tests for managers and agents, stepped deterministically.

Manager and agent are driven by manual ``step()`` calls (no threads) with
worker threads real — the same coupling the live fabric uses but under
test control.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.containers.spec import ContainerTechnology
from repro.endpoint.agent import FuncXAgent
from repro.endpoint.config import EndpointConfig
from repro.endpoint.manager import Manager
from repro.serialize import FuncXSerializer
from repro.transport.channel import Channel
from repro.transport.messages import (
    Advertisement,
    CommandMessage,
    Heartbeat,
    Registration,
    ResultBatchMessage,
    ResultMessage,
    TaskBatchMessage,
    TaskMessage,
)

SERIALIZER = FuncXSerializer()


def unwrap_tasks(messages):
    """Expand batch envelopes into per-task messages, bodies reattached."""
    tasks = []
    for message in messages:
        if isinstance(message, TaskBatchMessage):
            for task in message.tasks:
                buffer = task.function_buffer or message.function_buffers.get(
                    task.function_id, b"")
                tasks.append(replace(task, function_buffer=buffer))
        elif isinstance(message, TaskMessage):
            tasks.append(message)
    return tasks


def unwrap_results(messages):
    """Expand result batch envelopes into individual result messages."""
    results = []
    for message in messages:
        if isinstance(message, ResultBatchMessage):
            results.extend(message.results)
        elif isinstance(message, ResultMessage):
            results.append(message)
    return results


def task_message(func, args=(), task_id="t1", container=None):
    return TaskMessage(
        sender="test",
        task_id=task_id,
        function_id=f"fn-{func.__name__}",
        function_buffer=SERIALIZER.serialize_function(func),
        payload_buffer=SERIALIZER.serialize((list(args), {})),
        container_image=container,
    )


def add_one(x):
    return x + 1


def pump(step_fn, predicate, timeout=5.0, interval=0.002):
    """Step a component until ``predicate()`` or timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        step_fn()
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def manager_world():
    config = EndpointConfig(workers_per_node=2, heartbeat_period=0.05,
                            scale_cold_start=0.0)
    channel = Channel()
    manager = Manager("mgr1", channel.left, config)
    for worker in manager._workers.values():
        worker.start()
    yield manager, channel.right
    manager.stop()


class TestManager:
    def test_registration_advertises_capacity(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        messages = agent_end.recv_all_ready()
        reg = [m for m in messages if isinstance(m, Registration)]
        adv = [m for m in messages if isinstance(m, Advertisement)]
        assert reg[0].capacity == 2
        assert adv and adv[0].idle_workers == 2

    def test_executes_task(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.recv_all_ready()
        agent_end.send(task_message(add_one, (41,)))
        assert pump(manager.step, lambda: manager.tasks_completed >= 1)

    def test_result_round_trip(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.recv_all_ready()
        agent_end.send(task_message(add_one, (41,), task_id="tx"))
        collected = []

        def drain():
            manager.step()
            collected.extend(
                m for m in agent_end.recv_all_ready() if isinstance(m, ResultMessage)
            )

        assert pump(drain, lambda: len(collected) >= 1)
        result = collected[0]
        assert result.task_id == "tx"
        assert SERIALIZER.deserialize(result.result_buffer) == 42

    def test_parallel_workers(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.recv_all_ready()
        for i in range(6):
            agent_end.send(task_message(add_one, (i,), task_id=f"t{i}"))
        collected = []

        def drain():
            manager.step()
            collected.extend(unwrap_results(agent_end.recv_all_ready()))

        assert pump(drain, lambda: len(collected) == 6)
        assert {m.task_id for m in collected} == {f"t{i}" for i in range(6)}

    def test_heartbeats_emitted(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        collected = []

        def drain():
            manager.step()
            collected.extend(
                m for m in agent_end.recv_all_ready() if isinstance(m, Heartbeat)
            )

        assert pump(drain, lambda: len(collected) >= 2)

    def test_container_redeploy_on_demand(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.recv_all_ready()
        key = f"{ContainerTechnology.DOCKER.value}:sci-image"
        agent_end.send(task_message(add_one, (1,), task_id="ct", container=key))
        collected = []

        def drain():
            manager.step()
            collected.extend(
                m for m in agent_end.recv_all_ready() if isinstance(m, ResultMessage)
            )

        assert pump(drain, lambda: len(collected) == 1)
        assert collected[0].success
        assert manager.cold_starts == 1
        assert key in manager.deployed_containers()

    def test_warm_container_reused(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.recv_all_ready()
        key = f"{ContainerTechnology.DOCKER.value}:sci-image"
        collected = []

        def drain():
            manager.step()
            collected.extend(
                m for m in agent_end.recv_all_ready() if isinstance(m, ResultMessage)
            )

        agent_end.send(task_message(add_one, (1,), task_id="c1", container=key))
        assert pump(drain, lambda: len(collected) == 1)
        agent_end.send(task_message(add_one, (2,), task_id="c2", container=key))
        assert pump(drain, lambda: len(collected) == 2)
        # Second task found the container already deployed on a worker.
        assert manager.cold_starts == 1

    def test_shutdown_command(self, manager_world):
        manager, agent_end = manager_world
        manager.register()
        agent_end.send(CommandMessage(sender="agent", command="shutdown"))
        manager.step()
        assert manager._stop.is_set()

    def test_advertised_capacity_without_batching(self):
        config = EndpointConfig(workers_per_node=4, internal_batching=False)
        channel = Channel()
        manager = Manager("m", channel.left, config)
        assert manager.advertised_capacity() == 1

    def test_advertised_capacity_with_prefetch(self):
        config = EndpointConfig(workers_per_node=4, prefetch_capacity=8)
        channel = Channel()
        manager = Manager("m", channel.left, config)
        assert manager.advertised_capacity() == 12


@pytest.fixture
def agent_world():
    config = EndpointConfig(workers_per_node=2, heartbeat_period=0.05,
                            heartbeat_grace=3, seed=1)
    fwd_channel = Channel()
    agent = FuncXAgent("ep-1", fwd_channel.right, config=config)
    mgr_channel = Channel()
    agent.attach_manager("mgr1", mgr_channel.right)
    return agent, fwd_channel.left, mgr_channel.left


class TestAgent:
    def test_registers_with_forwarder(self, agent_world):
        agent, forwarder_end, _ = agent_world
        agent.register_with_forwarder()
        messages = forwarder_end.recv_all_ready()
        assert isinstance(messages[0], Registration)
        assert messages[0].metadata["endpoint_id"] == "ep-1"

    def test_routes_task_to_advertised_manager(self, agent_world):
        agent, forwarder_end, manager_end = agent_world
        manager_end.send(Advertisement(sender="mgr1", manager_id="mgr1", idle_workers=2))
        agent.step()
        forwarder_end.send(task_message(add_one, (1,), task_id="t1"))
        agent.step()
        delivered = manager_end.recv_all_ready()
        assert len(delivered) == 1
        (task,) = unwrap_tasks(delivered)
        assert task.task_id == "t1"
        assert task.function_buffer  # body travels with the envelope
        assert agent.outstanding_count() == 1

    def test_queues_when_no_capacity(self, agent_world):
        agent, forwarder_end, manager_end = agent_world
        forwarder_end.send(task_message(add_one, (1,)))
        agent.step()
        assert manager_end.recv_all_ready() == []
        assert agent.pending_count() == 1

    def test_result_forwarded_and_tracking_cleared(self, agent_world):
        agent, forwarder_end, manager_end = agent_world
        manager_end.send(Advertisement(sender="mgr1", manager_id="mgr1", idle_workers=2))
        agent.step()
        forwarder_end.send(task_message(add_one, (1,), task_id="t1"))
        agent.step()
        manager_end.recv_all_ready()
        manager_end.send(
            ResultMessage(sender="w", task_id="t1", success=True,
                          result_buffer=SERIALIZER.serialize(2))
        )
        agent.step()
        out = [m for m in forwarder_end.recv_all_ready() if isinstance(m, ResultMessage)]
        assert len(out) == 1
        assert agent.outstanding_count() == 0

    def test_manager_loss_reexecutes_on_other_manager(self, agent_world, monkeypatch):
        agent, forwarder_end, manager_end = agent_world
        # Use a manual clock inside the agent's heartbeat tracker.
        manager_end.send(Advertisement(sender="mgr1", manager_id="mgr1", idle_workers=2))
        manager_end.send(Heartbeat(sender="mgr1"))
        agent.step()
        forwarder_end.send(task_message(add_one, (1,), task_id="t1"))
        agent.step()
        assert len(manager_end.recv_all_ready()) == 1
        # Attach a second manager, then let mgr1 go silent past the grace.
        channel2 = Channel()
        agent.attach_manager("mgr2", channel2.right)
        channel2.left.send(Advertisement(sender="mgr2", manager_id="mgr2", idle_workers=2))
        channel2.left.send(Heartbeat(sender="mgr2"))
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and agent.outstanding_count() > 0:
            channel2.left.send(Heartbeat(sender="mgr2"))
            agent.step()
            time.sleep(0.02)
        redelivered = channel2.left.recv_all_ready()
        tasks = unwrap_tasks(redelivered)
        assert [t.task_id for t in tasks] == ["t1"]
        assert agent.tasks_reexecuted == 1

    def test_task_fails_after_reexecution_budget(self):
        config = EndpointConfig(
            workers_per_node=2, heartbeat_period=0.01, heartbeat_grace=1,
            max_retries_on_loss=0,
        )
        fwd_channel = Channel()
        agent = FuncXAgent("ep-x", fwd_channel.right, config=config)
        mgr_channel = Channel()
        agent.attach_manager("mgr1", mgr_channel.right)
        forwarder_end, manager_end = fwd_channel.left, mgr_channel.left
        manager_end.send(Advertisement(sender="mgr1", manager_id="mgr1", idle_workers=2))
        manager_end.send(Heartbeat(sender="mgr1"))
        agent.step()
        forwarder_end.send(task_message(add_one, (1,), task_id="doomed"))
        agent.step()
        manager_end.recv_all_ready()
        time.sleep(0.05)  # silence exceeds 1 × 0.01s grace
        agent.step()
        failures = [
            m for m in forwarder_end.recv_all_ready() if isinstance(m, ResultMessage)
        ]
        assert len(failures) == 1 and not failures[0].success

    def test_suspend_manager_stops_scheduling(self, agent_world):
        agent, forwarder_end, manager_end = agent_world
        manager_end.send(Advertisement(sender="mgr1", manager_id="mgr1", idle_workers=2))
        manager_end.send(Heartbeat(sender="mgr1"))
        agent.step()
        agent.suspend_manager("mgr1")
        cmd = [m for m in manager_end.recv_all_ready() if isinstance(m, CommandMessage)]
        assert cmd and cmd[0].command == "suspend"
        forwarder_end.send(task_message(add_one, (1,)))
        agent.step()
        assert all(
            not isinstance(m, TaskMessage) for m in manager_end.recv_all_ready()
        )
        assert agent.pending_count() == 1

    def test_shutdown_manager_detaches(self, agent_world):
        agent, _, manager_end = agent_world
        agent.shutdown_manager("mgr1")
        cmd = manager_end.recv_all_ready()
        assert any(isinstance(m, CommandMessage) and m.command == "shutdown" for m in cmd)
        assert agent.manager_ids() == []

    def test_heartbeats_to_forwarder(self, agent_world):
        agent, forwarder_end, _ = agent_world
        agent.register_with_forwarder()
        forwarder_end.recv_all_ready()
        time.sleep(0.06)
        agent.step()
        beats = [m for m in forwarder_end.recv_all_ready() if isinstance(m, Heartbeat)]
        assert beats
