"""Unit tests for the agent's manager-selection policies."""

from __future__ import annotations

import pytest

from repro.endpoint.scheduling import (
    FirstFitScheduler,
    ManagerView,
    RandomizedScheduler,
    RoundRobinScheduler,
    scheduler_by_name,
)


def view(mid, capacity, containers=(), outstanding=0):
    return ManagerView(
        manager_id=mid,
        capacity=capacity,
        deployed_containers=frozenset(containers),
        outstanding=outstanding,
    )


class TestManagerView:
    def test_available(self):
        v = view("m", 5, outstanding=3)
        assert v.available == 2

    def test_available_never_negative(self):
        assert view("m", 2, outstanding=5).available == 0

    def test_suits_raw_always(self):
        v = view("m", 1)
        assert v.suits(None)
        assert v.suits("RAW")

    def test_suits_container(self):
        v = view("m", 1, containers=["docker:img"])
        assert v.suits("docker:img")
        assert not v.suits("docker:other")


class TestRandomizedScheduler:
    def test_none_when_no_capacity(self):
        s = RandomizedScheduler(seed=1)
        assert s.select([view("m", 0)], None) is None
        assert s.select([], None) is None

    def test_prefers_suitable_container(self):
        s = RandomizedScheduler(seed=1)
        managers = [
            view("plain", 10),
            view("warm", 10, containers=["docker:x"]),
        ]
        picks = {s.select(managers, "docker:x").manager_id for _ in range(50)}
        assert picks == {"warm"}

    def test_falls_back_when_no_suitable(self):
        s = RandomizedScheduler(seed=1)
        managers = [view("plain", 5)]
        assert s.select(managers, "docker:x").manager_id == "plain"

    def test_randomizes_among_ties(self):
        s = RandomizedScheduler(seed=1)
        managers = [view("a", 5), view("b", 5), view("c", 5)]
        picks = {s.select(managers, None).manager_id for _ in range(100)}
        assert picks == {"a", "b", "c"}

    def test_skips_saturated(self):
        s = RandomizedScheduler(seed=1)
        managers = [view("full", 5, outstanding=5), view("free", 5)]
        assert s.select(managers, None).manager_id == "free"

    def test_deterministic_with_seed(self):
        managers = [view("a", 1), view("b", 1), view("c", 1)]
        seq1 = [RandomizedScheduler(seed=9).select(managers, None).manager_id for _ in range(5)]
        seq2 = [RandomizedScheduler(seed=9).select(managers, None).manager_id for _ in range(5)]
        assert seq1 == seq2


class TestRoundRobinScheduler:
    def test_cycles(self):
        s = RoundRobinScheduler()
        managers = [view("a", 10), view("b", 10), view("c", 10)]
        picks = [s.select(managers, None).manager_id for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_skips_full(self):
        s = RoundRobinScheduler()
        managers = [view("a", 10), view("b", 0), view("c", 10)]
        picks = [s.select(managers, None).manager_id for _ in range(4)]
        assert picks == ["a", "c", "a", "c"]

    def test_all_full_returns_none(self):
        s = RoundRobinScheduler()
        assert s.select([view("a", 0), view("b", 0)], None) is None


class TestFirstFitScheduler:
    def test_concentrates_on_first(self):
        s = FirstFitScheduler()
        managers = [view("a", 10), view("b", 10)]
        assert all(s.select(managers, None).manager_id == "a" for _ in range(5))

    def test_spills_when_first_full(self):
        s = FirstFitScheduler()
        managers = [view("a", 2, outstanding=2), view("b", 10)]
        assert s.select(managers, None).manager_id == "b"

    def test_prefers_container_match(self):
        s = FirstFitScheduler()
        managers = [view("plain", 10), view("warm", 10, containers=["docker:x"])]
        assert s.select(managers, "docker:x").manager_id == "warm"


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(scheduler_by_name("randomized"), RandomizedScheduler)
        assert isinstance(scheduler_by_name("round_robin"), RoundRobinScheduler)
        assert isinstance(scheduler_by_name("first_fit"), FirstFitScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            scheduler_by_name("lottery")
