"""Unit tests for worker execution (the pure core + the thread loop)."""

from __future__ import annotations

import queue

import pytest

from repro.containers.runtime import ContainerRuntime
from repro.containers.spec import ContainerSpec
from repro.core.batch import MAP_TAG
from repro.endpoint.worker import Worker, execute_task_message
from repro.serialize import FuncXSerializer
from repro.serialize.traceback import RemoteExceptionWrapper
from repro.transport.messages import TaskMessage


SERIALIZER = FuncXSerializer()


def task_message(func, args=(), kwargs=None, task_id="t1", payload=None):
    return TaskMessage(
        sender="test",
        task_id=task_id,
        function_id=f"fn-{getattr(func, '__name__', 'anon')}",
        function_buffer=SERIALIZER.serialize_function(func),
        payload_buffer=(
            payload
            if payload is not None
            else SERIALIZER.serialize((list(args), kwargs or {}))
        ),
    )


def add(a, b=0):
    return a + b


def failing(x):
    raise RuntimeError(f"worker saw {x}")


class TestExecuteTaskMessage:
    def test_success(self):
        result = execute_task_message(task_message(add, (1,), {"b": 2}), SERIALIZER)
        assert result.success
        assert SERIALIZER.deserialize(result.result_buffer) == 3
        assert result.task_id == "t1"
        assert result.execution_time >= 0

    def test_result_routed_by_task_id(self):
        result = execute_task_message(task_message(add, (1,)), SERIALIZER)
        assert SERIALIZER.routing_tag(result.result_buffer) == "t1"

    def test_user_exception_wrapped(self):
        result = execute_task_message(task_message(failing, (9,)), SERIALIZER)
        assert not result.success
        wrapper = SERIALIZER.deserialize(result.result_buffer)
        assert isinstance(wrapper, RemoteExceptionWrapper)
        assert "worker saw 9" in wrapper.format()

    def test_function_cache_reused_for_same_body(self):
        cache = {}
        msg = task_message(add, (1,))
        execute_task_message(msg, SERIALIZER, function_cache=cache)
        assert "fn-add" in cache
        _digest, cached_func = cache["fn-add"]
        execute_task_message(task_message(add, (2,), task_id="t2"),
                             SERIALIZER, function_cache=cache)
        assert cache["fn-add"][1] is cached_func  # not re-deserialized

    def test_function_cache_invalidated_on_new_body(self):
        cache = {}
        execute_task_message(task_message(add, (1,)), SERIALIZER,
                             function_cache=cache)
        old_func = cache["fn-add"][1]

        updated = SERIALIZER.deserialize(SERIALIZER.serialize(lambda a, b=0: a + b + 100))
        msg2 = TaskMessage(
            sender="t", task_id="t2", function_id="fn-add",  # same id, new body
            function_buffer=SERIALIZER.serialize(updated),
            payload_buffer=SERIALIZER.serialize(([1], {})),
        )
        result = execute_task_message(msg2, SERIALIZER, function_cache=cache)
        assert result.success
        assert SERIALIZER.deserialize(result.result_buffer) == 101
        assert cache["fn-add"][1] is not old_func

    def test_map_payload_applies_per_item(self):
        payload = SERIALIZER.serialize([1, 2, 3], routing_tag=MAP_TAG)
        result = execute_task_message(
            task_message(lambda x: x * 10, payload=payload), SERIALIZER
        )
        assert SERIALIZER.deserialize(result.result_buffer) == [10, 20, 30]

    def test_corrupt_payload_is_failure_not_crash(self):
        msg = TaskMessage(
            sender="t", task_id="t3", function_id="f9",
            function_buffer=SERIALIZER.serialize_function(add),
            payload_buffer=b"not a buffer",
        )
        result = execute_task_message(msg, SERIALIZER)
        assert not result.success


class TestWorkerThread:
    def _make_worker(self):
        results: "queue.Queue" = queue.Queue()
        runtime = ContainerRuntime(seed=0)
        worker = Worker(
            worker_id="w0",
            inbox=queue.Queue(),
            results=results,
            container=runtime.instantiate(ContainerSpec.bare()),
        )
        return worker, results

    def test_executes_and_reports(self):
        worker, results = self._make_worker()
        worker.start()
        try:
            worker.inbox.put(task_message(add, (20, ), {"b": 22}))
            worker_id, result = results.get(timeout=5.0)
            assert worker_id == "w0"
            assert SERIALIZER.deserialize(result.result_buffer) == 42
            assert worker.tasks_executed == 1
            assert worker.container.executions == 1
        finally:
            worker.stop()

    def test_serial_execution_order(self):
        worker, results = self._make_worker()
        worker.start()
        try:
            for i in range(5):
                worker.inbox.put(task_message(add, (i,), task_id=f"t{i}"))
            got = [results.get(timeout=5.0)[1].task_id for _ in range(5)]
            assert got == [f"t{i}" for i in range(5)]
        finally:
            worker.stop()

    def test_stop_is_idempotent(self):
        worker, _ = self._make_worker()
        worker.start()
        worker.stop()
        worker.stop()

    def test_double_start_rejected(self):
        worker, _ = self._make_worker()
        worker.start()
        try:
            with pytest.raises(RuntimeError):
                worker.start()
        finally:
            worker.stop()

    def test_failure_does_not_kill_worker(self):
        worker, results = self._make_worker()
        worker.start()
        try:
            worker.inbox.put(task_message(failing, (1,), task_id="bad"))
            worker.inbox.put(task_message(add, (1,), task_id="good"))
            first = results.get(timeout=5.0)[1]
            second = results.get(timeout=5.0)[1]
            assert not first.success
            assert second.success
        finally:
            worker.stop()
