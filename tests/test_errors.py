"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_funcx_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.FuncXError), name

    def test_not_found_family(self):
        for cls in (errors.FunctionNotFound, errors.EndpointNotFound,
                    errors.TaskNotFound, errors.ContainerNotFound):
            exc = cls("abc-123")
            assert isinstance(exc, errors.NotFoundError)
            assert "abc-123" in str(exc)
            assert exc.identifier == "abc-123"

    def test_auth_family(self):
        exc = errors.AuthorizationFailed("alice@orcid", "execute")
        assert isinstance(exc, errors.AuthError)
        assert exc.identity == "alice@orcid"
        assert exc.required == "execute"
        assert issubclass(errors.AuthenticationFailed, errors.AuthError)

    def test_payload_too_large_message(self):
        exc = errors.PayloadTooLarge(size=2048, limit=1024)
        assert exc.size == 2048 and exc.limit == 1024
        assert "out-of-band" in str(exc)

    def test_task_pending_fields(self):
        exc = errors.TaskPending("t-1", "queued")
        assert exc.task_id == "t-1" and exc.status == "queued"
        assert isinstance(exc, errors.TaskError)

    def test_task_execution_failed_carries_traceback(self):
        exc = errors.TaskExecutionFailed("Traceback...\nValueError: x")
        assert "ValueError" in exc.remote_traceback

    def test_max_retries(self):
        exc = errors.MaxRetriesExceeded("t-9", attempts=3)
        assert exc.attempts == 3 and "3 attempts" in str(exc)

    def test_heartbeat_missed_fields(self):
        exc = errors.HeartbeatMissed("manager-1", last_seen=12.5)
        assert isinstance(exc, errors.TransportError)
        assert "12.5" in str(exc)

    def test_provider_family(self):
        for cls in (errors.AllocationExhausted, errors.SubmitFailed,
                    errors.InvalidJobState):
            assert issubclass(cls, errors.ProviderError)

    def test_endpoint_family(self):
        for cls in (errors.NoSuitableManager, errors.WorkerLost,
                    errors.ManagerLost):
            assert issubclass(cls, errors.EndpointError)

    def test_simulation_family(self):
        assert issubclass(errors.ClockMonotonicityViolation, errors.SimulationError)

    def test_catching_base_catches_specific(self):
        with pytest.raises(errors.FuncXError):
            raise errors.FunctionNotFound("f")
        with pytest.raises(errors.TaskError):
            raise errors.TaskCancelled("stopped")
