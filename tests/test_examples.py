"""Smoke tests: every example script runs to completion.

Examples are the documentation users actually execute; these tests keep
them green as the library evolves.  Each runs in a subprocess with a
clean interpreter, exactly as a user would run it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["double(21) -> 42", "remote failure surfaced locally"],
    "metadata_extraction.py": ["extracted 18 metadata records", "archived corpus"],
    "ml_inference_service.py": ["model published", "unauthorized invocation rejected"],
    "federated_hep_analysis.py": ["resonance bump"],
    "xpcs_streaming_pipeline.py": ["accounting:", "g2(1..3)"],
    "ssx_multisite.py": ["quality control at the beamline", "strongest diffraction"],
}


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "examples/ and EXPECTED_MARKERS are out of sync"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    for marker in EXPECTED_MARKERS[script]:
        assert marker in result.stdout, (
            f"{script} output missing {marker!r}:\n{result.stdout}"
        )
