"""Tests for the FuncXExecutor SDK facade and the client result-path
fixes that shipped with it (wait_for deadline handling, cancel
propagation, subscription-leak regression)."""

from __future__ import annotations

import threading

import pytest

from repro import LocalDeployment, ServiceConfig
from repro.core.client import FuncXClient
from repro.core.executor import AtomicController, FuncXExecutor
from repro.errors import TaskCancelled, TaskPending

from tests.conftest import FakeClock


def double(x):
    return 2 * x


def boom():
    raise KeyError("remote failure")


@pytest.fixture
def deployment():
    with LocalDeployment() as dep:
        yield dep


@pytest.fixture
def client(deployment):
    return deployment.client()


@pytest.fixture
def endpoint_id(deployment):
    return deployment.create_endpoint("exec-ep", nodes=1)


class TestAtomicController:
    def test_start_fires_on_zero_to_positive_edge(self):
        starts, stops = [], []
        controller = AtomicController(lambda: starts.append(1),
                                      lambda: stops.append(1))
        controller.increment()
        controller.increment()
        assert starts == [1]  # only the edge fires, not every increment
        assert controller.value == 2

    def test_reset_returns_drained_and_fires_stop(self):
        starts, stops = [], []
        controller = AtomicController(lambda: starts.append(1),
                                      lambda: stops.append(1))
        controller.increment(3)
        assert controller.reset() == 3
        assert stops == [1]
        assert controller.reset() == 0  # empty drain: no stop callback
        assert stops == [1]
        controller.increment()
        assert starts == [1, 1]  # edge re-arms after a drain


class TestExecutor:
    def test_submit_resolves_from_stream(self, client, endpoint_id):
        with client.executor(endpoint_id) as executor:
            futures = [executor.submit(double, i) for i in range(10)]
            assert [f.result(timeout=30) for f in futures] == [
                2 * i for i in range(10)]
        # Every result arrived by push, none by polling.
        metrics = client.service.metrics
        assert metrics.counter("stream.results_delivered").value >= 10
        assert metrics.counter("executor.tasks_submitted").value == 10

    def test_burst_coalesces_into_waves(self, client, endpoint_id):
        with client.executor(endpoint_id, batch_interval=0.05) as executor:
            futures = [executor.submit(double, i) for i in range(32)]
            for f in futures:
                f.result(timeout=30)
        summary = client.service.metrics.histogram(
            "executor.submit_batch_size").summary()
        assert summary["max"] > 1  # the burst rode shared waves

    def test_registered_function_id_accepted(self, client, endpoint_id):
        fid = client.register_function(double, public=True)
        with client.executor(endpoint_id) as executor:
            assert executor.submit(fid, 21).result(timeout=30) == 42

    def test_callable_registered_once(self, client, endpoint_id):
        with client.executor(endpoint_id) as executor:
            executor.submit(double, 1).result(timeout=30)
            executor.submit(double, 2).result(timeout=30)
            assert len(executor._function_ids) == 1

    def test_map_preserves_order(self, client, endpoint_id):
        with client.executor(endpoint_id) as executor:
            assert list(executor.map(double, range(8))) == [
                2 * i for i in range(8)]

    def test_remote_exception_reraised(self, client, endpoint_id):
        with client.executor(endpoint_id) as executor:
            future = executor.submit(boom)
            with pytest.raises(KeyError):
                future.result(timeout=30)

    def test_submit_after_shutdown_raises(self, client, endpoint_id):
        executor = client.executor(endpoint_id)
        executor.shutdown(wait=True)
        with pytest.raises(RuntimeError):
            executor.submit(double, 1)

    def test_pre_dispatch_cancel_never_submits(self, client, endpoint_id):
        # A long Nagle hold keeps the call in the pending wave; cancelling
        # there is a true stdlib cancel — the task never exists.
        with client.executor(endpoint_id, batch_interval=2.0) as executor:
            future = executor.submit(double, 1)
            assert future.cancel() is True
            assert future.cancelled
            with pytest.raises(TaskCancelled):
                future.result(timeout=5)
            follow_up = executor.submit(double, 21)
            assert follow_up.result(timeout=30) == 42
        assert client.service.metrics.counter(
            "executor.tasks_submitted").value == 1  # only the follow-up

    def test_shutdown_cancel_futures_drops_pending(self, client, endpoint_id):
        executor = client.executor(endpoint_id, batch_interval=2.0)
        future = executor.submit(double, 1)
        executor.shutdown(wait=True, cancel_futures=True)
        assert future.cancelled

    def test_post_dispatch_cancel_propagates(self, client, endpoint_id):
        def slow(x):
            import time as t
            t.sleep(0.5)
            return x

        with client.executor(endpoint_id, batch_interval=0.0) as executor:
            blocker = executor.submit(slow, 0)      # occupies the worker
            victim = executor.submit(slow, 1)       # stays QUEUED
            deadline_future = victim
            # Wait for the wave to dispatch so the task id exists.
            deadline = 50
            while deadline_future.task_id == "" and deadline:
                deadline -= 1
                import time as t
                t.sleep(0.01)
            assert victim.cancel() is True
            with pytest.raises(TaskCancelled):
                victim.result(timeout=5)
            assert blocker.result(timeout=30) == 0
        assert client.service.tasks_cancelled >= 1

    def test_memoized_fast_path(self, client, endpoint_id):
        with client.executor(endpoint_id, memoize=True) as executor:
            first = executor.submit(double, 5).result(timeout=30)
            # The repeat completes at submit time (memo hit) — before the
            # watch lands; the terminal fast-path must still deliver it.
            second = executor.submit(double, 5).result(timeout=30)
        assert first == second == 10
        assert client.service.metrics.counter(
            "service.memo_completions").value >= 1

    def test_spilled_result_round_trips(self, deployment=None):
        with LocalDeployment(
                service_config=ServiceConfig(stream_spill_threshold=256)
        ) as dep:
            client = dep.client()
            ep = dep.create_endpoint("spill-ep", nodes=1)

            def big(n):
                return b"z" * n

            with client.executor(ep) as executor:
                assert executor.submit(big, 10_000).result(
                    timeout=30) == b"z" * 10_000
            assert dep.metrics.counter("stream.results_spilled").value >= 1
            assert len(dep.service.result_stream.spill) == 0

    def test_batch_size_validated(self, client, endpoint_id):
        with pytest.raises(ValueError):
            FuncXExecutor(client, endpoint_id, batch_size=0)


class ScriptedClient(FuncXClient):
    """A client stub with a scripted result path for deterministic
    wait_for tests: get_result never blocks; only the sleeper advances
    the fake clock."""

    def __init__(self, clock, ready_at=None, value=b"done"):
        self._clock = clock
        self._sleep = lambda seconds: clock.advance(seconds)
        self.ready_at = ready_at
        self.value = value
        self.timeouts_seen: list[float] = []

    def get_result(self, task_id, timeout=0.0):
        self.timeouts_seen.append(timeout)
        if self.ready_at is not None and self._clock() >= self.ready_at:
            return self.value
        raise TaskPending(task_id, "running")

    def get_status(self, task_id):
        from repro.core.tasks import TaskState

        return TaskState.RUNNING


class TestWaitForDeadline:
    def test_returns_within_budget(self):
        clock = FakeClock()
        stub = ScriptedClient(clock, ready_at=None)
        with pytest.raises(TaskPending):
            stub.wait_for("t", timeout=2.0, poll=0.5)
        # The old loop overshot by up to a full blocking interval; the
        # clamped loop never sleeps past the deadline.
        assert clock.now == pytest.approx(2.0)

    def test_block_clamped_to_remaining(self):
        clock = FakeClock()
        stub = ScriptedClient(clock, ready_at=None)
        with pytest.raises(TaskPending):
            stub.wait_for("t", timeout=0.3, poll=0.5)
        # Every blocking call fits the remaining budget (old code always
        # passed the full 0.5 s block).
        assert all(t <= 0.3 for t in stub.timeouts_seen)
        assert clock.now == pytest.approx(0.3)

    def test_result_at_deadline_returned(self):
        clock = FakeClock()
        # Ready exactly at the deadline: the post-loop check must return
        # the result instead of raising TaskPending.
        stub = ScriptedClient(clock, ready_at=2.0)
        assert stub.wait_for("t", timeout=2.0, poll=0.5) == b"done"
        assert stub.timeouts_seen[-1] == 0.0  # resolved by the final check

    def test_result_mid_wait_returned(self):
        clock = FakeClock()
        stub = ScriptedClient(clock, ready_at=0.9)
        assert stub.wait_for("t", timeout=5.0, poll=0.3) == b"done"
        assert clock.now < 5.0


class TestFutureForSubscriptionLeak:
    def test_memo_hit_fast_path_does_not_leak(self, deployment, client,
                                              endpoint_id):
        fid = client.register_function(double, public=True)
        # Prime the memo cache through the live path.
        client.submit(fid, endpoint_id, 7, memoize=True).result(timeout=30)
        pubsub = deployment.service.pubsub
        before = pubsub.live_subscriptions()
        for _ in range(10):
            # Memo hits complete before _future_for subscribes; the
            # terminal fast-path resolves the future, and its
            # done-callback must still tear the subscription down.
            assert client.submit(
                fid, endpoint_id, 7, memoize=True).result(timeout=30) == 14
        assert pubsub.live_subscriptions() == before

    def test_error_path_does_not_leak(self, deployment, client, endpoint_id,
                                      monkeypatch):
        fid = client.register_function(double, public=True)
        task_id = client.run(fid, endpoint_id, 7)

        def explode(_task_id):
            raise RuntimeError("task lookup failed")

        pubsub = deployment.service.pubsub
        before = pubsub.live_subscriptions()
        monkeypatch.setattr(deployment.service, "task_by_id", explode)
        with pytest.raises(RuntimeError):
            client._future_for(task_id)
        assert pubsub.live_subscriptions() == before


class TestClientCancel:
    def test_future_cancel_propagates_to_service(self, deployment, client,
                                                 endpoint_id):
        def slow(x):
            import time as t
            t.sleep(0.5)
            return x

        fid = client.register_function(slow, public=True)
        blocker = client.submit(fid, endpoint_id, 0)
        victim = client.submit(fid, endpoint_id, 1)
        assert victim.cancel() is True
        assert victim.cancelled
        with pytest.raises(TaskCancelled):
            victim.result(timeout=5)
        assert deployment.service.tasks_cancelled == 1
        assert blocker.result(timeout=30) == 0

    def test_cancel_loses_to_result(self, client, endpoint_id):
        fid = client.register_function(double, public=True)
        future = client.submit(fid, endpoint_id, 3)
        assert future.result(timeout=30) == 6
        assert future.cancel() is False
        assert not future.cancelled
