"""Unit tests for the commercial FaaS latency models (Table 1 comparators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faas import PROVIDER_MODELS, CommercialFaaSModel, LatencyModel


class TestLatencyModel:
    def test_mean_and_std_calibration(self):
        import random

        model = LatencyModel(mean=100.0, std=7.0)
        rng = random.Random(1)
        samples = np.array([model.sample(rng) for _ in range(20000)])
        assert samples.mean() == pytest.approx(100.0, rel=0.05)
        assert samples.std() == pytest.approx(7.0, rel=0.15)

    def test_zero_std_degenerate(self):
        import random

        model = LatencyModel(mean=50.0, std=0.0)
        assert model.sample(random.Random(0)) == 50.0

    def test_floor_respected(self):
        import random

        model = LatencyModel(mean=1.0, std=5.0, floor=0.5)
        rng = random.Random(2)
        assert all(model.sample(rng) >= 0.5 for _ in range(500))


class TestProviderModels:
    def test_all_three_providers_present(self):
        assert set(PROVIDER_MODELS) == {"azure", "google", "amazon"}

    @pytest.mark.parametrize(
        "provider,warm_total,cold_total",
        [("azure", 130.0, 1359.7), ("google", 85.6, 222.8), ("amazon", 100.3, 468.8)],
    )
    def test_totals_match_table1(self, provider, warm_total, cold_total):
        from repro.faas.commercial import _models

        model = _models(seed=1)[provider]
        warm = np.array([s.total for s in model.sample_many(3000, cold=False)])
        cold = np.array([s.total for s in model.sample_many(1000, cold=True)])
        assert warm.mean() == pytest.approx(warm_total, rel=0.10)
        assert cold.mean() == pytest.approx(cold_total, rel=0.15)

    def test_cold_slower_than_warm(self):
        for model in PROVIDER_MODELS.values():
            warm = np.mean([s.total for s in model.sample_many(500, cold=False)])
            cold = np.mean([s.total for s in model.sample_many(500, cold=True)])
            assert cold > warm


class TestCacheStateMachine:
    def _model(self):
        from repro.faas.commercial import _models

        return _models(seed=3)["amazon"]

    def test_first_invocation_is_cold(self):
        model = self._model()
        assert model.invoke(now=0.0).cold

    def test_back_to_back_is_warm(self):
        model = self._model()
        model.invoke(now=0.0)
        assert not model.invoke(now=1.0).cold

    def test_cache_expires_after_ttl(self):
        model = self._model()
        model.invoke(now=0.0)
        # Amazon's cache is 5 minutes (§5.1); 15-minute gaps force cold.
        assert model.invoke(now=15 * 60.0).cold

    def test_invocation_refreshes_cache(self):
        model = self._model()
        model.invoke(now=0.0)
        model.invoke(now=250.0)
        assert not model.invoke(now=500.0).cold  # 250 s after refresh

    def test_sample_many_pins_temperature(self):
        model = self._model()
        assert all(s.cold for s in model.sample_many(20, cold=True))
        assert all(not s.cold for s in model.sample_many(20, cold=False))

    def test_sample_decomposition(self):
        sample = self._model().invoke(now=0.0)
        assert sample.total == sample.overhead + sample.function_time
