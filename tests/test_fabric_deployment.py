"""Unit tests for the LocalDeployment assembly and Endpoint lifecycle."""

from __future__ import annotations

import time

import pytest

from repro import DeploymentTimings, EndpointConfig, LocalDeployment
from repro.core.service import ServiceConfig


class TestDeploymentAssembly:
    def test_client_reuses_identity(self):
        with LocalDeployment() as dep:
            a = dep.client("alice")
            b = dep.client("alice")
            assert a.identity.identity_id == b.identity.identity_id
            c = dep.client("carol")
            assert c.identity.identity_id != a.identity.identity_id

    def test_endpoint_listing_and_handles(self):
        with LocalDeployment() as dep:
            ep1 = dep.create_endpoint("a", nodes=1, start=False)
            ep2 = dep.create_endpoint("b", nodes=1, start=False)
            assert dep.endpoints() == sorted([ep1, ep2])
            assert dep.endpoint(ep1).endpoint_id == ep1
            assert dep.forwarder(ep2).endpoint_id == ep2

    def test_unstarted_endpoint_queues_tasks(self):
        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("lazy", nodes=1, start=False)
            fid = client.register_function(lambda x: x)
            task_id = client.run(fid, ep, 1)
            from repro.core.tasks import TaskState

            assert client.get_status(task_id) is TaskState.QUEUED

    def test_endpoints_are_auth_native_clients(self):
        with LocalDeployment() as dep:
            dep.create_endpoint("secured", nodes=1, start=False)
            record = dep.service.endpoints.all()[0]
            owner = dep.auth.get_identity(record.owner_id)
            assert owner.provider == "funcx-endpoint"

    def test_service_overhead_wired_from_timings(self):
        timings = DeploymentTimings(service_overhead=0.02)
        with LocalDeployment(timings=timings) as dep:
            assert dep.service.config.request_overhead == 0.02

    def test_custom_service_config_preserved(self):
        config = ServiceConfig(payload_limit=1024)
        with LocalDeployment(service_config=config) as dep:
            assert dep.service.config.payload_limit == 1024

    def test_create_endpoint_after_shutdown_rejected(self):
        dep = LocalDeployment()
        dep.shutdown()
        with pytest.raises(RuntimeError):
            dep.create_endpoint("late", nodes=1)

    def test_shutdown_idempotent(self):
        dep = LocalDeployment()
        dep.create_endpoint("e", nodes=1)
        dep.shutdown()
        dep.shutdown()

    def test_drain_empty_endpoint(self):
        with LocalDeployment() as dep:
            ep = dep.create_endpoint("e", nodes=1)
            assert dep.drain(ep, timeout=2.0)

    def test_drain_waits_for_outstanding(self):
        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("e", nodes=1)
            import repro.workloads as w

            fid = client.register_function(w.make_sleep_function(0.3))
            client.submit(fid, ep)
            assert not dep.drain(ep, timeout=0.05)
            assert dep.drain(ep, timeout=10.0)


class TestEndpointLifecycle:
    def test_wait_ready(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("e", nodes=2)
            endpoint = dep.endpoint(ep_id)
            assert endpoint.wait_ready(timeout=5.0)
            assert endpoint.agent.total_capacity() > 0

    def test_double_start_rejected(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("e", nodes=1)
            with pytest.raises(RuntimeError):
                dep.endpoint(ep_id).start()

    def test_total_workers(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint(
                "e", nodes=3, config=EndpointConfig(workers_per_node=2)
            )
            assert dep.endpoint(ep_id).total_workers == 6

    def test_scale_in_unknown_manager(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("e", nodes=1)
            assert not dep.endpoint(ep_id).scale_in("nope")

    def test_kill_unknown_manager(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("e", nodes=1)
            with pytest.raises(KeyError):
                dep.endpoint(ep_id).kill_manager("ghost")

    def test_restart_manager_adds_capacity(self):
        with LocalDeployment() as dep:
            ep_id = dep.create_endpoint("e", nodes=1)
            endpoint = dep.endpoint(ep_id)
            before = endpoint.total_workers
            endpoint.restart_manager()
            assert endpoint.total_workers == before + endpoint.config.workers_per_node


class TestClientEdgeCases:
    def test_wait_for_timeout(self):
        from repro.errors import TaskPending

        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("e", nodes=1, start=False)  # never runs
            fid = client.register_function(lambda x: x)
            task_id = client.run(fid, ep, 1)
            with pytest.raises(TaskPending):
                client.wait_for(task_id, timeout=0.3)

    def test_update_function_new_body_served(self):
        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("e", nodes=1)

            def v1(x):
                return x + 1

            def v2(x):
                return x + 100

            fid = client.register_function(v1)
            assert client.wait_for(client.run(fid, ep, 1), timeout=15) == 2
            version = client.update_function(fid, v2)
            assert version == 2
            assert client.wait_for(client.run(fid, ep, 1), timeout=15) == 101

    def test_register_endpoint_via_client(self):
        from repro.auth.scopes import Scope

        with LocalDeployment() as dep:
            identity = dep.auth.register_identity("admin")
            from repro.core.client import FuncXClient

            client = FuncXClient(dep.service, identity,
                                 scopes=[Scope.REGISTER_ENDPOINT, Scope.MONITOR])
            ep_id = client.register_endpoint("registered-via-sdk")
            assert dep.service.endpoints.get(ep_id).name == "registered-via-sdk"

    def test_map_empty_iterator(self):
        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("e", nodes=1)
            fid = client.register_function(lambda x: x)
            result = client.map(fid, [], ep, batch_size=4)
            assert result.batch_count == 0
            assert result.result(timeout=5) == []


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points_present(self):
        import repro

        for name in ("LocalDeployment", "FuncXClient", "FederatedExecutor",
                     "UsageLedger", "TaskEventLog", "Dashboard", "RestApi"):
            assert name in repro.__all__
