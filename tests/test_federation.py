"""Tests for client-side federation across multiple endpoints."""

from __future__ import annotations

import pytest

from repro import LocalDeployment
from repro.errors import EndpointError
from repro.federation import (
    FederatedExecutor,
    LeastLoadedEndpoints,
    RandomEndpoints,
    RoundRobinEndpoints,
)


def double(x):
    return 2 * x


@pytest.fixture
def federation():
    with LocalDeployment(seed=11) as dep:
        client = dep.client()
        eps = [dep.create_endpoint(f"site-{i}", nodes=1) for i in range(3)]
        fid = client.register_function(double, public=True)
        yield dep, client, eps, fid


class TestPolicies:
    def test_round_robin_cycles(self, federation):
        _dep, client, eps, _fid = federation
        policy = RoundRobinEndpoints()
        picks = [policy.select(eps, client) for _ in range(6)]
        assert picks == eps + eps

    def test_random_is_seeded(self, federation):
        _dep, client, eps, _fid = federation
        a = [RandomEndpoints(seed=1).select(eps, client) for _ in range(10)]
        b = [RandomEndpoints(seed=1).select(eps, client) for _ in range(10)]
        assert a == b
        assert set(a) <= set(eps)

    def test_least_loaded_prefers_idle(self, federation):
        dep, client, eps, fid = federation
        # Load the first endpoint with queued work on a stopped twin.
        lazy = dep.create_endpoint("busy-site", nodes=1, start=False)
        for _ in range(5):
            client.run(fid, lazy, 1)
        policy = LeastLoadedEndpoints()
        pick = policy.select([lazy, eps[0]], client)
        assert pick == eps[0]


class TestFederatedExecutor:
    def test_submissions_spread(self, federation):
        _dep, client, eps, fid = federation
        executor = FederatedExecutor(client, eps)
        futures = [executor.submit(fid, i) for i in range(9)]
        assert [f.result(timeout=30) for f in futures] == [2 * i for i in range(9)]
        assert all(executor.submissions[ep] == 3 for ep in eps)

    def test_future_records_endpoint(self, federation):
        _dep, client, eps, fid = federation
        executor = FederatedExecutor(client, eps)
        future = executor.submit(fid, 1)
        assert future.endpoint_id in eps
        assert future.result(timeout=30) == 2

    def test_federated_map(self, federation):
        _dep, client, eps, fid = federation
        executor = FederatedExecutor(client, eps)
        futures = executor.map(fid, range(12), batch_size=4)
        assert len(futures) == 3
        flat = [v for f in futures for v in f.result(timeout=30)]
        assert flat == [2 * i for i in range(12)]
        assert {f.endpoint_id for f in futures} == set(eps)

    def test_offline_endpoints_skipped(self, federation):
        dep, client, eps, fid = federation
        dep.endpoint(eps[0]).kill_endpoint()
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if not dep.service.endpoints.get(eps[0]).connected:
                break
            dep.forwarder(eps[0]).heartbeats  # just wait for detection
            time.sleep(0.05)
        executor = FederatedExecutor(client, eps)
        futures = [executor.submit(fid, i) for i in range(4)]
        assert all(f.endpoint_id != eps[0] for f in futures)
        assert [f.result(timeout=30) for f in futures] == [0, 2, 4, 6]

    def test_no_endpoints_raises(self, federation):
        _dep, client, eps, fid = federation
        with pytest.raises(ValueError):
            FederatedExecutor(client, [])

    def test_all_offline_raises(self, federation):
        dep, client, eps, fid = federation
        executor = FederatedExecutor(client, ["not-connected"],
                                     require_connected=True)
        # an endpoint id that exists but was never started
        lazy = dep.create_endpoint("never", nodes=1, start=False)
        executor = FederatedExecutor(client, [lazy])
        with pytest.raises(EndpointError):
            executor.submit(fid, 1)

    def test_membership_management(self, federation):
        _dep, client, eps, _fid = federation
        executor = FederatedExecutor(client, eps[:1])
        executor.add_endpoint(eps[1])
        executor.add_endpoint(eps[1])  # idempotent
        assert executor.endpoints == (eps[0], eps[1])
        assert executor.remove_endpoint(eps[0])
        assert not executor.remove_endpoint(eps[0])
        assert executor.endpoints == (eps[1],)
