"""End-to-end integration tests on the live fabric.

Real threads, real channels, real Python functions executing through the
complete service → forwarder → agent → manager → worker pipeline.
"""

from __future__ import annotations

import time

import pytest

from repro import DeploymentTimings, EndpointConfig, LocalDeployment, TaskState
from repro.errors import AuthorizationFailed, PayloadTooLarge, TaskPending


def double(x):
    return 2 * x


def concat(a, b, sep="-"):
    return f"{a}{sep}{b}"


def boom():
    raise ZeroDivisionError("intentional")


@pytest.fixture
def deployment():
    with LocalDeployment(seed=7) as dep:
        yield dep


@pytest.fixture
def world(deployment):
    client = deployment.client("alice")
    endpoint_id = deployment.create_endpoint(
        "test-ep", nodes=1,
        config=EndpointConfig(workers_per_node=4, heartbeat_period=0.1),
    )
    return deployment, client, endpoint_id


class TestBasicExecution:
    def test_run_and_wait(self, world):
        _dep, client, ep = world
        fid = client.register_function(double, public=True)
        task_id = client.run(fid, ep, 21)
        assert client.wait_for(task_id, timeout=15) == 42

    def test_positional_and_keyword_args(self, world):
        _dep, client, ep = world
        fid = client.register_function(concat)
        task_id = client.run(fid, ep, "a", "b", sep="+")
        assert client.wait_for(task_id, timeout=15) == "a+b"

    def test_future_api(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        future = client.submit(fid, ep, 5)
        assert future.result(timeout=15) == 10
        assert future.done()

    def test_many_concurrent_tasks(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        futures = [client.submit(fid, ep, i) for i in range(40)]
        values = [f.result(timeout=30) for f in futures]
        assert values == [2 * i for i in range(40)]

    def test_remote_exception_reraised_with_traceback(self, world):
        _dep, client, ep = world
        fid = client.register_function(boom)
        task_id = client.run(fid, ep)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            state = client.get_status(task_id)
            if state is TaskState.FAILED:
                break
            time.sleep(0.02)
        from repro.errors import TaskExecutionFailed

        # The original exception type is restored, carrying the remote
        # traceback as its cause.
        with pytest.raises(ZeroDivisionError, match="intentional") as info:
            client.get_result(task_id)
        assert isinstance(info.value.__cause__, TaskExecutionFailed)

    def test_status_progression(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        task_id = client.run(fid, ep, 1)
        client.wait_for(task_id, timeout=15)
        task = world[0].service.task_by_id(task_id)
        times = task.state_times
        assert times["received"] <= times["queued"] <= times["dispatched"]
        assert task.breakdown()["tw"] >= 0

    def test_result_pending_before_completion(self, world):
        _dep, client, ep = world
        import repro.workloads as w

        fid = client.register_function(w.make_sleep_function(1.0))
        task_id = client.run(fid, ep)
        with pytest.raises(TaskPending):
            client.get_result(task_id, timeout=0.0)
        assert client.wait_for(task_id, timeout=15) == 1.0


class TestBatchAndMap:
    def test_batch_run(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        ids = client.batch_run([(fid, ep, (i,), {}) for i in range(5)])
        assert [client.wait_for(t, timeout=15) for t in ids] == [0, 2, 4, 6, 8]

    def test_map_flattens_in_order(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        result = client.map(fid, range(20), ep, batch_size=6)
        assert result.result(timeout=20) == [2 * i for i in range(20)]
        assert result.batch_count == 4

    def test_map_batch_count_precedence(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        result = client.map(fid, range(12), ep, batch_size=1, batch_count=3)
        assert result.batch_count == 3
        assert result.result(timeout=20) == [2 * i for i in range(12)]

    def test_map_partial_failures(self, world):
        _dep, client, ep = world

        def picky(x):
            if x == 3:
                raise ValueError("no threes")
            return x

        fid = client.register_function(picky)
        result = client.map(fid, range(6), ep, batch_size=2)
        out = result.result_or_exceptions(timeout=20)
        from repro.serialize.traceback import RemoteExceptionWrapper

        assert out[0] == 0 and out[5] == 5
        assert isinstance(out[3], RemoteExceptionWrapper)


class TestMemoizationLive:
    def test_memo_hit_skips_execution(self, world):
        dep, client, ep = world
        calls = []

        def slow_double(x):
            import time

            time.sleep(0.2)
            return 2 * x

        fid = client.register_function(slow_double)
        t1 = client.run(fid, ep, 4, memoize=True)
        assert client.wait_for(t1, timeout=15) == 8
        start = time.monotonic()
        t2 = client.run(fid, ep, 4, memoize=True)
        assert client.wait_for(t2, timeout=15) == 8
        assert time.monotonic() - start < 0.2  # served from cache
        assert dep.service.task_by_id(t2).memo_hit


class TestAuthorizationLive:
    def test_private_function_blocked(self, deployment):
        client_a = deployment.client("alice")
        client_b = deployment.client("bob")
        ep = deployment.create_endpoint("ep", nodes=1)
        fid = client_a.register_function(double, public=False)
        with pytest.raises(AuthorizationFailed):
            client_b.run(fid, ep, 1)

    def test_shared_function_allowed(self, deployment):
        client_a = deployment.client("alice")
        client_b = deployment.client("bob")
        ep = deployment.create_endpoint("ep", nodes=1)
        fid = client_a.register_function(
            double, allowed_users=(client_b.identity.identity_id,)
        )
        task_id = client_b.run(fid, ep, 3)
        assert client_b.wait_for(task_id, timeout=15) == 6

    def test_payload_cap_enforced(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        with pytest.raises(PayloadTooLarge):
            client.run(fid, ep, "x" * (1024 * 1024))


class TestFederation:
    def test_two_endpoints_one_function(self, deployment):
        client = deployment.client()
        ep1 = deployment.create_endpoint("site-a", nodes=1)
        ep2 = deployment.create_endpoint("site-b", nodes=1)
        fid = client.register_function(double)
        t1 = client.run(fid, ep1, 1)
        t2 = client.run(fid, ep2, 2)
        assert client.wait_for(t1, timeout=15) == 2
        assert client.wait_for(t2, timeout=15) == 4

    def test_endpoint_listing(self, deployment):
        client = deployment.client()
        deployment.create_endpoint("alpha", nodes=1)
        deployment.create_endpoint("beta", nodes=1)
        names = {e.name for e in deployment.service.list_endpoints(
            client._auth_client.bearer_token())}
        assert {"alpha", "beta"} <= names


class TestLatencyInjection:
    def test_wan_latency_visible_in_round_trip(self):
        timings = DeploymentTimings(service_endpoint_latency=0.05)
        with LocalDeployment(timings=timings) as dep:
            client = dep.client()
            ep = dep.create_endpoint("remote", nodes=1)
            fid = client.register_function(double)
            start = time.monotonic()
            task_id = client.run(fid, ep, 1)
            client.wait_for(task_id, timeout=15)
            elapsed = time.monotonic() - start
            assert elapsed >= 0.1  # at least one WAN round trip


class TestFaultToleranceLive:
    def test_manager_failure_recovery(self, deployment):
        config = EndpointConfig(
            workers_per_node=2, heartbeat_period=0.1, heartbeat_grace=3
        )
        client = deployment.client()
        ep_id = deployment.create_endpoint("flaky", nodes=2, config=config)
        endpoint = deployment.endpoint(ep_id)
        import repro.workloads as w

        fid = client.register_function(w.make_sleep_function(0.2))
        futures = [client.submit(fid, ep_id) for _ in range(12)]
        time.sleep(0.15)
        victim = endpoint.agent.manager_ids()[0]
        endpoint.kill_manager(victim)
        endpoint.restart_manager()
        for future in futures:
            assert future.result(timeout=30) == 0.2

    def test_endpoint_failure_recovery(self, deployment):
        config = EndpointConfig(
            workers_per_node=2, heartbeat_period=0.1, heartbeat_grace=3
        )
        client = deployment.client()
        ep_id = deployment.create_endpoint("offline-prone", nodes=1, config=config)
        endpoint = deployment.endpoint(ep_id)
        fid = client.register_function(double)
        # Take the endpoint down, submit while offline, then recover.
        endpoint.kill_endpoint()
        time.sleep(0.5)  # forwarder notices the silence and requeues
        futures = [client.submit(fid, ep_id, i) for i in range(4)]
        endpoint.recover_endpoint()
        assert [f.result(timeout=30) for f in futures] == [0, 2, 4, 6]


class TestElasticityLive:
    def test_scale_out_and_in(self, deployment):
        client = deployment.client()
        ep_id = deployment.create_endpoint("elastic", nodes=1)
        endpoint = deployment.endpoint(ep_id)
        assert endpoint.total_workers == 4
        added = endpoint.scale_out(2)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and len(endpoint.agent.manager_ids()) < 3:
            time.sleep(0.02)
        assert endpoint.total_workers == 12
        fid = client.register_function(double)
        futures = [client.submit(fid, ep_id, i) for i in range(24)]
        assert [f.result(timeout=30) for f in futures] == [2 * i for i in range(24)]
        assert endpoint.scale_in(added[0])
        assert endpoint.total_workers == 8


class TestFmapAlias:
    def test_fmap_matches_paper_signature(self, world):
        _dep, client, ep = world
        fid = client.register_function(double)
        result = client.fmap(fid, range(8), ep, batch_size=4)
        assert result.batch_count == 2
        assert result.result(timeout=20) == [2 * i for i in range(8)]
