"""Unit tests for the static lock-order graph (repro.analysis.lockorder)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lockorder import (
    LockOrderGraph,
    Witness,
    check_lock_order,
    extract_lock_graph,
)
from repro.analysis.runner import iter_python_files
from repro.analysis.source import load_source, module_name_for, parse_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def _sources(*texts: str):
    return [parse_source(text, path=f"mod{i}.py", module=f"fixtures.mod{i}")
            for i, text in enumerate(texts)]


def _graph(*texts: str) -> LockOrderGraph:
    return extract_lock_graph(_sources(*texts))


NESTED = """
import threading


class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def run(self):
        with self._a_lock:
            with self._b_lock:
                pass
"""

MULTI_ITEM = """
import threading


class Pair:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def run(self):
        with self._a_lock, self._b_lock:
            pass
"""


class TestEdgeExtraction:
    def test_nested_with_produces_ordered_edge(self):
        graph = _graph(NESTED)
        assert graph.has_edge("Pair._a_lock", "Pair._b_lock")
        assert not graph.has_edge("Pair._b_lock", "Pair._a_lock")

    def test_multi_item_with_orders_left_to_right(self):
        graph = _graph(MULTI_ITEM)
        assert graph.has_edge("Pair._a_lock", "Pair._b_lock")
        assert not graph.has_edge("Pair._b_lock", "Pair._a_lock")

    def test_reentrant_same_lock_is_not_an_edge(self):
        graph = _graph("""
import threading


class Solo:
    def __init__(self):
        self._lock = threading.RLock()

    def run(self):
        with self._lock:
            with self._lock:
                pass
""")
        assert graph.edges == {}

    def test_witness_records_file_line_and_symbol(self):
        graph = _graph(NESTED)
        witnesses = graph.edges[("Pair._a_lock", "Pair._b_lock")]
        formatted = witnesses[0].format()
        assert "mod0.py:" in formatted and "Pair.run" in formatted
        assert "acquires" in formatted

    def test_call_through_edge_via_typed_attribute(self):
        graph = _graph("""
import threading


class Inner:
    def __init__(self):
        self._inner_lock = threading.Lock()

    def poke(self):
        with self._inner_lock:
            pass


class Outer:
    def __init__(self):
        self._outer_lock = threading.Lock()
        self.inner = Inner()

    def run(self):
        with self._outer_lock:
            self.inner.poke()
""")
        assert graph.has_edge("Outer._outer_lock", "Inner._inner_lock")

    def test_call_through_edges_cross_files(self):
        inner = """
import threading


class Inner:
    def __init__(self):
        self._inner_lock = threading.Lock()

    def poke(self):
        with self._inner_lock:
            pass
"""
        outer = """
import threading


class Outer:
    def __init__(self, inner: Inner):
        self._outer_lock = threading.Lock()
        self.inner = inner

    def run(self):
        with self._outer_lock:
            self.inner.poke()
"""
        graph = extract_lock_graph(_sources(inner, outer))
        assert graph.has_edge("Outer._outer_lock", "Inner._inner_lock")


class TestGraphHelpers:
    def _w(self):
        return Witness(path="p.py", line=1, symbol="S.m", detail="d")

    def test_self_edges_are_dropped(self):
        graph = LockOrderGraph()
        graph.add_edge("A.l", "A.l", self._w())
        assert graph.edges == {}

    def test_subgraph_and_missing(self):
        small = LockOrderGraph()
        small.add_edge("A.l", "B.l", self._w())
        big = LockOrderGraph()
        big.add_edge("A.l", "B.l", self._w())
        big.add_edge("B.l", "C.l", self._w())
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)
        assert big.missing_from(small) == [("B.l", "C.l")]

    def test_cycles_one_per_scc(self):
        graph = LockOrderGraph()
        graph.add_edge("A.l", "B.l", self._w())
        graph.add_edge("B.l", "A.l", self._w())
        graph.add_edge("B.l", "C.l", self._w())  # acyclic appendix
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {("A.l", "B.l"), ("B.l", "A.l")}


ABBA_LEFT = """
import threading


class Left:
    def __init__(self, right: Right):
        self._left_lock = threading.Lock()
        self.right = right

    def poke(self):
        with self._left_lock:
            with self.right._right_lock:
                pass
"""

ABBA_RIGHT = """
import threading


class Right:
    def __init__(self):
        self._right_lock = threading.Lock()
        self.left = None

    def attach(self, left: Left):
        self.left = left

    def poke(self):
        with self._right_lock:
            with self.left._left_lock:
                pass
"""


class TestCycleFindings:
    def test_abba_cycle_reported_with_both_witnesses(self):
        findings = list(check_lock_order(_sources(ABBA_LEFT, ABBA_RIGHT)))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.check == "lock-order"
        assert "lock-order cycle" in finding.message
        # both legs of the inversion are named with their witness sites
        assert "Left.poke" in finding.message
        assert "Right.poke" in finding.message
        assert "mod0.py:" in finding.message and "mod1.py:" in finding.message

    def test_consistent_order_is_clean(self):
        consistent = ABBA_RIGHT.replace(
            "with self._right_lock:\n            with self.left._left_lock:",
            "with self.left._left_lock:\n            with self._right_lock:")
        assert consistent != ABBA_RIGHT
        assert list(check_lock_order(_sources(ABBA_LEFT, consistent))) == []


class TestFullSourceTree:
    def test_src_lock_graph_is_acyclic(self):
        sources = [load_source(p, str(p.relative_to(REPO_ROOT)), module_name_for(p))
                   for p in iter_python_files(REPO_ROOT / "src")]
        graph = extract_lock_graph(sources)
        assert graph.cycles() == []
