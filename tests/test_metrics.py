"""Unit tests for metrics: stats, timelines, timers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import LatencyRecorder, StageTimer, Stopwatch, Timeline, summarize


class TestSummaryStats:
    def test_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == 2.5
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.median == 2.5
        assert stats.count == 4
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentiles(self):
        stats = summarize(np.arange(101.0))
        assert stats.p95 == pytest.approx(95.0)
        assert stats.p99 == pytest.approx(99.0)

    def test_scaled(self):
        stats = summarize([1.0, 2.0]).scaled(1000.0)
        assert stats.mean == 1500.0
        assert stats.count == 2

    def test_row_format(self):
        row = summarize([1.0]).row("warm funcx")
        assert "warm funcx" in row and "mean=" in row


class TestLatencyRecorder:
    def test_record_and_summarize(self):
        rec = LatencyRecorder()
        rec.record("warm", 0.1)
        rec.record("warm", 0.3)
        rec.record_many("cold", [1.0, 2.0, 3.0])
        assert rec.count("warm") == 2
        assert rec.summary("warm").mean == pytest.approx(0.2)
        assert rec.labels() == ["cold", "warm"]

    def test_samples_array(self):
        rec = LatencyRecorder()
        rec.record("x", 1.0)
        assert isinstance(rec.samples("x"), np.ndarray)
        assert rec.samples("missing").size == 0

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record("x", 1.0)
        rec.clear()
        assert rec.labels() == []

    def test_thread_safety(self):
        import threading

        rec = LatencyRecorder()

        def writer():
            for i in range(1000):
                rec.record("t", float(i))

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.count("t") == 4000


class TestTimeline:
    def test_record_and_read(self):
        tl = Timeline()
        tl.record("pods", 0.0, 1)
        tl.record("pods", 5.0, 3)
        times, values = tl.series("pods")
        assert list(times) == [0.0, 5.0]
        assert list(values) == [1.0, 3.0]
        assert len(tl) == 2

    def test_out_of_order_insert_keeps_sorted(self):
        tl = Timeline()
        tl.record("s", 5.0, 1)
        tl.record("s", 2.0, 2)
        times, values = tl.series("s")
        assert list(times) == [2.0, 5.0]
        assert list(values) == [2.0, 1.0]

    def test_step_resample(self):
        tl = Timeline()
        tl.record("pods", 1.0, 5)
        tl.record("pods", 10.0, 2)
        out = tl.step_resample("pods", [0.0, 1.0, 5.0, 10.0, 20.0])
        assert list(out) == [0.0, 5.0, 5.0, 2.0, 2.0]

    def test_step_resample_empty_series(self):
        tl = Timeline()
        assert list(tl.step_resample("none", [0.0, 1.0])) == [0.0, 0.0]

    def test_bin_mean(self):
        tl = Timeline()
        for t, v in [(0.1, 10.0), (0.9, 20.0), (1.5, 100.0)]:
            tl.record("lat", t, v)
        centers, means = tl.bin_mean("lat", 1.0)
        assert list(centers) == [0.5, 1.5]
        assert list(means) == [15.0, 100.0]

    def test_bin_mean_validation(self):
        with pytest.raises(ValueError):
            Timeline().bin_mean("x", 0.0)

    def test_max_over(self):
        tl = Timeline()
        tl.record("s", 0.0, 3)
        tl.record("s", 1.0, 9)
        assert tl.max_over("s") == 9.0
        with pytest.raises(ValueError):
            tl.max_over("empty")

    def test_rate_of_events(self):
        tl = Timeline()
        for i in range(10):
            tl.record("ev", float(i), 1)
        # events at t=0..9; window 5 looks back from t=9: events at 4..9 = 6
        assert tl.rate_of_events("ev", window=5.0) == pytest.approx(6 / 5.0)


class TestTimers:
    def test_stopwatch(self):
        clock_values = iter([0.0, 2.5])
        sw = Stopwatch(clock=lambda: next(clock_values))
        sw.start()
        assert sw.stop() == 2.5

    def test_stopwatch_accumulates(self, clock):
        sw = Stopwatch(clock=clock)
        sw.start()
        clock.advance(1.0)
        sw.stop()
        sw.start()
        clock.advance(2.0)
        sw.stop()
        assert sw.elapsed == 3.0

    def test_stopwatch_misuse(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stage_timer_context(self, clock):
        timer = StageTimer(clock=clock)
        with timer.stage("ts"):
            clock.advance(0.5)
        with timer.stage("tw"):
            clock.advance(1.0)
        assert timer.total("ts") == 0.5
        assert timer.total("tw") == 1.0

    def test_stage_timer_mean(self, clock):
        timer = StageTimer(clock=clock)
        timer.add("ts", 1.0)
        timer.add("ts", 3.0)
        assert timer.mean("ts") == 2.0
        assert timer.mean("unknown") == 0.0

    def test_breakdown_order(self, clock):
        timer = StageTimer(clock=clock)
        for name, duration in [("tw", 1.0), ("ts", 0.2), ("tf", 0.1), ("te", 0.3)]:
            timer.add(name, duration)
        breakdown = timer.breakdown()
        assert list(breakdown) == ["ts", "tf", "te", "tw"]

    def test_clear(self, clock):
        timer = StageTimer(clock=clock)
        timer.add("x", 1.0)
        timer.clear()
        assert timer.stages() == {}
