"""Tests for the monitoring subsystem (event log + dashboard)."""

from __future__ import annotations

import pytest

from repro import LocalDeployment
from repro.core.tasks import TaskState
from repro.monitoring import Dashboard, TaskEvent, TaskEventLog


class TestEventLog:
    def test_record_and_query(self, clock):
        log = TaskEventLog(clock=clock)
        log.record(TaskEvent(0.0, "t1", "queued", endpoint_id="e1"))
        clock.advance(1.0)
        log.record(TaskEvent(1.0, "t1", "success", endpoint_id="e1"))
        log.record(TaskEvent(1.0, "t2", "queued", endpoint_id="e2"))
        assert len(log) == 3
        assert len(log.events(task_id="t1")) == 2
        assert len(log.events(endpoint_id="e2")) == 1
        assert len(log.events(state="success")) == 1
        assert len(log.events(since=1.0)) == 2

    def test_capacity_bound(self, clock):
        log = TaskEventLog(capacity=5, clock=clock)
        for i in range(12):
            log.record(TaskEvent(float(i), f"t{i}", "queued"))
        assert len(log) == 5
        assert log.dropped == 7
        # oldest events were dropped
        assert log.events()[0].task_id == "t7"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TaskEventLog(capacity=0)

    def test_completion_rate(self, clock):
        log = TaskEventLog(clock=clock)
        for i in range(10):
            log.record(TaskEvent(clock(), f"t{i}", "success"))
            clock.advance(0.1)
        assert log.completion_rate(window=2.0) == pytest.approx(5.0)

    def test_completion_rate_zero_window(self, clock):
        assert TaskEventLog(clock=clock).completion_rate(0.0) == 0.0


class TestLiveAttachment:
    def test_events_recorded_for_live_tasks(self):
        with LocalDeployment() as dep:
            log = TaskEventLog()
            log.attach(dep.service)
            client = dep.client()
            ep = dep.create_endpoint("mon-ep", nodes=1)
            fid = client.register_function(lambda x: x * 3, public=True)
            future = client.submit(fid, ep, 5)
            assert future.result(timeout=30) == 15
            events = log.events(task_id=future.task_id)
            assert [e.state for e in events] == ["success"]
            assert events[0].endpoint_id == ep
            log.detach()

    def test_double_attach_rejected(self):
        with LocalDeployment() as dep:
            log = TaskEventLog()
            log.attach(dep.service)
            with pytest.raises(RuntimeError):
                log.attach(dep.service)
            log.detach()


class TestDashboard:
    def test_state_counts_and_load(self):
        with LocalDeployment() as dep:
            client = dep.client()
            live = dep.create_endpoint("live-ep", nodes=1)
            lazy = dep.create_endpoint("lazy-ep", nodes=1, start=False)
            fid = client.register_function(lambda x: x, public=True)
            done = client.submit(fid, live, 1)
            assert done.result(timeout=30) == 1
            client.run(fid, lazy, 2)  # stays queued

            dash = Dashboard(dep.service)
            counts = dash.state_counts()
            assert counts[TaskState.SUCCESS.value] == 1
            assert counts[TaskState.QUEUED.value] == 1

            load = dash.endpoint_load()
            assert load[lazy]["queued"] == 1
            assert load[live]["connected"] is True
            assert load[lazy]["connected"] is False

    def test_memoizer_stats(self):
        with LocalDeployment() as dep:
            dash = Dashboard(dep.service)
            stats = dash.memoizer_stats()
            assert stats["hit_rate"] == 0.0

    def test_render_text(self):
        with LocalDeployment() as dep:
            log = TaskEventLog()
            log.attach(dep.service)
            dep.create_endpoint("shown-ep", nodes=1)
            text = Dashboard(dep.service, log).render()
            assert "funcX dashboard" in text
            assert "shown-ep" in text
            assert "events recorded" in text
            log.detach()
