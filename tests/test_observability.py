"""Tests for the observability fabric: traces, metrics, CLI, propagation.

Unit-level coverage of :mod:`repro.observability.trace` and
:mod:`repro.metrics.registry` under a fake clock, plus a live
``LocalDeployment`` test asserting a completed task's trace carries a
span for every stage of the figure-4 decomposition.
"""

from __future__ import annotations

import pytest

from repro.metrics.registry import MetricsRegistry, render_records
from repro.observability.trace import (
    STAGES,
    Span,
    TraceContext,
    TraceStore,
    aggregate_breakdowns,
)


class TestTraceContext:
    def test_begin_end_records_span(self):
        ctx = TraceContext(task_id="t1", opened_at=0.0)
        ctx.begin("agent", "agent:ep", at=1.0)
        span = ctx.end("agent", at=3.5, manager="m1")
        assert span is not None
        assert span.duration == pytest.approx(2.5)
        assert span.annotations == {"manager": "m1"}
        assert ctx.breakdown() == {"agent": pytest.approx(2.5)}

    def test_end_without_begin_is_noop(self):
        ctx = TraceContext(task_id="t1")
        assert ctx.end("agent", at=1.0) is None
        assert ctx.completed_spans() == []

    def test_record_one_shot(self):
        ctx = TraceContext(task_id="t1")
        ctx.record("worker", "w0", start=2.0, end=5.0, success=True)
        [span] = ctx.completed_spans()
        assert span.name == "worker"
        assert span.duration == pytest.approx(3.0)

    def test_breakdown_uses_last_span_per_stage(self):
        # A re-executed task records "worker" twice; the attempt that
        # produced the result is the one the breakdown reports.
        ctx = TraceContext(task_id="t1")
        ctx.record("worker", "w0", start=0.0, end=1.0)
        ctx.record("worker", "w1", start=5.0, end=5.25)
        assert ctx.breakdown()["worker"] == pytest.approx(0.25)

    def test_closed_context_ignores_recording(self):
        ctx = TraceContext(task_id="t1", opened_at=0.0)
        ctx.record("service", "service", start=0.0, end=1.0)
        ctx.close(at=10.0)
        assert ctx.total() == pytest.approx(10.0)
        assert ctx.record("worker", "w0", start=11.0, end=12.0) is None
        assert ctx.begin("agent", "a", at=11.0) is None
        assert list(ctx.breakdown()) == ["service"]

    def test_round_trip_through_records(self):
        ctx = TraceContext(task_id="t1", opened_at=1.0)
        ctx.record("service", "service", start=1.0, end=2.0, memo_hit=False)
        ctx.close(at=9.0)
        restored = TraceContext.from_record(ctx.to_record())
        assert restored.trace_id == ctx.trace_id
        assert restored.task_id == "t1"
        assert restored.total() == pytest.approx(8.0)
        assert restored.breakdown() == {"service": pytest.approx(1.0)}

    def test_span_round_trip(self):
        span = Span(name="worker", component="w0", start=1.0, end=2.0,
                    attempt=2, annotations={"success": True})
        assert Span.from_record(span.to_record()) == span


class TestTraceStore:
    def test_open_and_finalize(self, clock):
        store = TraceStore(clock=clock)
        ctx = store.open("t1")
        assert ctx is store.open("t1")  # idempotent
        clock.advance(2.0)
        finalized = store.finalize("t1")
        assert finalized is ctx
        assert ctx.total() == pytest.approx(2.0)
        assert store.trace_id_for("t1") == ctx.trace_id

    def test_disabled_store_is_noop(self, clock):
        store = TraceStore(clock=clock, enabled=False)
        assert store.open("t1") is None
        assert store.context_for("t1") is None
        assert store.finalize("t1") is None
        assert store.trace_id_for("t1") is None

    def test_capacity_evicts_oldest_finalized(self, clock):
        store = TraceStore(clock=clock, capacity=2)
        store.open("t1")
        store.finalize("t1")
        store.open("t2")  # live, never evicted
        store.open("t3")
        assert store.context_for("t1") is None  # t1 was finalized -> evicted
        assert store.context_for("t2") is not None
        assert store.context_for("t3") is not None

    def test_dump_and_load_jsonl(self, clock, tmp_path):
        store = TraceStore(clock=clock)
        ctx = store.open("t1")
        ctx.record("service", "service", start=0.0, end=0.5)
        clock.advance(1.0)
        store.finalize("t1")
        path = tmp_path / "traces.jsonl"
        assert store.dump_jsonl(str(path)) == 1
        [loaded] = TraceStore.load_jsonl(str(path))
        assert loaded.trace_id == ctx.trace_id
        assert loaded.breakdown() == {"service": pytest.approx(0.5)}

    def test_aggregate_breakdowns(self):
        a = TraceContext(task_id="a")
        a.record("worker", "w0", start=0.0, end=1.0)
        b = TraceContext(task_id="b")
        b.record("worker", "w1", start=0.0, end=3.0)
        pooled = aggregate_breakdowns([a, b])
        assert pooled == {"worker": [pytest.approx(1.0), pytest.approx(3.0)]}


class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self, clock):
        registry = MetricsRegistry(clock=clock)
        counter = registry.counter("service.tasks_received")
        counter.inc()
        counter.inc(2)
        assert registry.counter("service.tasks_received") is counter
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_separate_instruments(self, clock):
        registry = MetricsRegistry(clock=clock)
        a = registry.counter("forwarder.tasks_forwarded", endpoint="ep-a")
        b = registry.counter("forwarder.tasks_forwarded", endpoint="ep-b")
        assert a is not b
        a.inc()
        assert registry.value("forwarder.tasks_forwarded", endpoint="ep-a") == 1
        assert registry.value("forwarder.tasks_forwarded", endpoint="ep-b") == 0

    def test_gauge_set_and_function(self, clock):
        registry = MetricsRegistry(clock=clock)
        gauge = registry.gauge("service.tasks_live")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3
        backing = {"n": 7}
        gauge.set_function(lambda: backing["n"])
        assert gauge.value == 7

    def test_histogram_summary(self, clock):
        registry = MetricsRegistry(clock=clock)
        hist = registry.histogram("task.stage_seconds", stage="worker")
        for value in (0.01, 0.02, 0.03, 0.04):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(0.025)
        assert summary["min"] == pytest.approx(0.01)
        assert summary["max"] == pytest.approx(0.04)

    def test_timer_uses_injected_clock(self, clock):
        registry = MetricsRegistry(clock=clock)
        with registry.timer("step.duration"):
            clock.advance(0.5)
        hist = registry.histogram("step.duration")
        assert hist.count == 1
        assert hist.total == pytest.approx(0.5)

    def test_snapshot_render_and_jsonl(self, clock, tmp_path):
        registry = MetricsRegistry(clock=clock)
        registry.counter("a.count").inc(3)
        registry.histogram("b.seconds").observe(0.1)
        clock.advance(1.0)
        text = registry.render_text()
        assert "a.count" in text and "b.seconds" in text
        path = tmp_path / "metrics.jsonl"
        assert registry.dump_jsonl(str(path)) == 2
        records = MetricsRegistry.load_jsonl(str(path))
        assert {r["name"] for r in records} == {"a.count", "b.seconds"}
        assert all(r["at"] == pytest.approx(1.0) for r in records)
        assert "a.count" in render_records(records)


class TestLiveSpanPropagation:
    def test_completed_task_has_all_stage_spans(self):
        from repro import EndpointConfig, LocalDeployment

        def double(x):
            return 2 * x

        with LocalDeployment() as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint(
                "traced-ep", config=EndpointConfig(workers_per_node=2))
            fid = client.register_function(double)
            task_id = client.run(fid, ep, 21)
            assert client.wait_for(task_id, timeout=30) == 42

            ctx = deployment.service.traces.context_for(task_id)
            assert ctx is not None
            assert ctx.closed
            breakdown = ctx.breakdown()
            for stage in STAGES:
                assert stage in breakdown, f"missing span for stage {stage}"
                assert breakdown[stage] >= 0.0
            # the stage histograms fed the shared registry
            hist = deployment.metrics.histogram("task.stage_seconds",
                                                stage="worker")
            assert hist.count >= 1
            # the task record links back to the trace
            task = deployment.service.task_by_id(task_id)
            assert task.metadata["trace_id"] == ctx.trace_id

    def test_tracing_disabled_leaves_no_traces(self):
        from repro import LocalDeployment, ServiceConfig

        def inc(x):
            return x + 1

        with LocalDeployment(
                service_config=ServiceConfig(tracing=False)) as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint("untraced-ep")
            fid = client.register_function(inc)
            task_id = client.run(fid, ep, 1)
            assert client.wait_for(task_id, timeout=30) == 2
            assert deployment.service.traces.context_for(task_id) is None
            assert "trace_id" not in deployment.service.task_by_id(task_id).metadata


class TestCli:
    def _demo_artifacts(self, tmp_path):
        from repro.cli import main

        traces = tmp_path / "traces.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        rc = main(["demo", "--tasks", "4", "--workers", "2",
                   "--trace-out", str(traces), "--metrics-out", str(metrics)])
        assert rc == 0
        return traces, metrics

    def test_trace_and_metrics_subcommands(self, tmp_path, capsys):
        from repro.cli import main

        traces, metrics = self._demo_artifacts(tmp_path)
        [first] = [c for c in TraceStore.load_jsonl(str(traces))][:1]
        capsys.readouterr()

        rc = main(["trace", first.task_id, "--input", str(traces)])
        out = capsys.readouterr().out
        assert rc == 0
        assert first.trace_id in out
        assert "breakdown:" in out
        assert "worker" in out

        rc = main(["metrics", "--input", str(metrics)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service.tasks_received" in out
        assert "task.stage_seconds" in out

    def test_trace_unknown_id_fails(self, tmp_path, capsys):
        from repro.cli import main

        traces, _ = self._demo_artifacts(tmp_path)
        capsys.readouterr()
        rc = main(["trace", "nonexistent-task", "--input", str(traces)])
        assert rc == 1
