"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import partition_iterator
from repro.core.memoization import Memoizer
from repro.serialize import FuncXSerializer
from repro.serialize.buffers import pack_buffer, unpack_buffer
from repro.sim.kernel import EventLoop
from repro.store.queues import ReliableQueue


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------
json_like = st.recursive(
    st.none() | st.booleans() | st.integers(-(10**9), 10**9) |
    st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=25,
)

picklable = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=30)
    | st.binary(max_size=30) | st.floats(allow_nan=False),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4)
    | st.frozensets(st.integers(), max_size=4),
    max_leaves=20,
)


class TestSerializerProperties:
    @given(obj=json_like)
    @settings(max_examples=150)
    def test_roundtrip_json_like(self, obj):
        s = FuncXSerializer()
        assert s.deserialize(s.serialize(obj)) == obj

    @given(obj=picklable)
    @settings(max_examples=150)
    def test_roundtrip_arbitrary_picklable(self, obj):
        s = FuncXSerializer()
        assert s.deserialize(s.serialize(obj)) == obj

    @given(
        payload=st.binary(max_size=2000),
        tag=st.text(
            alphabet=st.characters(blacklist_characters="\x1f\n", blacklist_categories=("Cs",)),
            max_size=50,
        ),
    )
    @settings(max_examples=150)
    def test_buffer_roundtrip(self, payload, tag):
        header, out = unpack_buffer(pack_buffer("01", tag, payload))
        assert out == payload
        assert header.routing_tag == tag

    @given(obj=json_like, tag=st.text(alphabet="abcdef0123456789-", max_size=36))
    @settings(max_examples=60)
    def test_routing_tag_readable_without_decode(self, obj, tag):
        s = FuncXSerializer()
        assert s.routing_tag(s.serialize(obj, routing_tag=tag)) == tag

    @given(args=st.lists(picklable, max_size=5),
           kwargs=st.dictionaries(
               st.text(alphabet="abcdefghij_", min_size=1, max_size=8),
               picklable, max_size=4))
    @settings(max_examples=100)
    def test_roundtrip_call_payload(self, args, kwargs):
        """The (args, kwargs) payload shape the client ships with a task."""
        s = FuncXSerializer()
        payload = (list(args), kwargs)
        restored_args, restored_kwargs = s.deserialize(s.serialize(payload))
        assert restored_args == list(args)
        assert restored_kwargs == kwargs


exception_types = st.sampled_from(
    [ValueError, TypeError, RuntimeError, KeyError, OSError, ZeroDivisionError]
)


class TestSerializerExceptionProperties:
    """Remote exceptions survive the wire with type, message, and frames."""

    @staticmethod
    def _raise_wrapped(exc_type, message):
        """Raise through a helper so the traceback has real frames."""
        from repro.serialize.traceback import RemoteExceptionWrapper

        def inner():
            raise exc_type(message)

        try:
            inner()
        except Exception as exc:
            return RemoteExceptionWrapper(exc)
        raise AssertionError("unreachable")

    @given(exc_type=exception_types, message=st.text(max_size=60))
    @settings(max_examples=100)
    def test_wrapper_roundtrip_preserves_identity(self, exc_type, message):
        s = FuncXSerializer()
        wrapper = self._raise_wrapped(exc_type, message)
        restored = s.deserialize(s.serialize(wrapper))
        assert restored.exc_type_name == exc_type.__name__
        assert restored.exc_str == wrapper.exc_str
        # The captured frames survive serialization, innermost included.
        assert restored.traceback.frames == wrapper.traceback.frames
        assert any(f.name == "inner" for f in restored.traceback.frames)
        formatted = restored.format()
        assert formatted.startswith("Traceback (most recent call last):")
        assert exc_type.__name__ in formatted

    @given(exc_type=exception_types, message=st.text(max_size=40))
    @settings(max_examples=60)
    def test_reraise_restores_original_type(self, exc_type, message):
        import pytest as _pytest

        s = FuncXSerializer()
        restored = s.deserialize(s.serialize(self._raise_wrapped(exc_type, message)))
        with _pytest.raises(exc_type) as excinfo:
            restored.reraise()
        assert str(excinfo.value) == restored.exc_str

    @given(message=st.text(max_size=40))
    @settings(max_examples=30)
    def test_unpicklable_exception_degrades_to_wrapped_type(self, message):
        from repro.errors import TaskExecutionFailed

        class Unpicklable(Exception):  # locally-defined: cannot unpickle
            pass

        import pytest as _pytest

        wrapper = self._raise_wrapped(Unpicklable, message)
        restored = FuncXSerializer().deserialize(FuncXSerializer().serialize(wrapper))
        assert restored.exc_type_name == "Unpicklable"
        with _pytest.raises(TaskExecutionFailed) as excinfo:
            restored.reraise()
        assert "Unpicklable" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Reliable queue: at-least-once delivery under arbitrary ack/nack patterns
# ---------------------------------------------------------------------------
class TestQueueProperties:
    @given(
        items=st.lists(st.integers(), min_size=1, max_size=40),
        decisions=st.lists(st.booleans(), min_size=100, max_size=100),
    )
    @settings(max_examples=80)
    def test_every_item_eventually_acked_exactly_once(self, items, decisions):
        """Whatever interleaving of nacks happens, finishing with acks
        delivers every item at least once and loses nothing."""
        q = ReliableQueue()
        q.put_many(items)
        delivered = []
        decision_iter = iter(decisions)
        while len(q) or q.in_flight:
            lease = q.lease()
            if lease is None:
                break
            if next(decision_iter, True):
                delivered.append(lease.item)
                q.ack(lease.lease_id)
            else:
                q.nack(lease.lease_id)
        assert sorted(delivered) == sorted(items)
        assert q.total_acked == len(items)

    @given(items=st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_nack_all_preserves_multiset(self, items):
        q = ReliableQueue()
        q.put_many(items)
        q.lease_many(len(items))
        q.nack_all()
        redelivered = [l.item for l in q.lease_many(len(items))]
        assert sorted(redelivered) == sorted(items)

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=30),
        chunk=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50)
    def test_fifo_order_without_nacks(self, items, chunk):
        q = ReliableQueue()
        q.put_many(items)
        seen = []
        while True:
            leases = q.lease_many(chunk)
            if not leases:
                break
            seen.extend(l.item for l in leases)
            for l in leases:
                q.ack(l.lease_id)
        assert seen == items


# ---------------------------------------------------------------------------
# Memoizer
# ---------------------------------------------------------------------------
class TestMemoizerProperties:
    @given(
        entries=st.lists(
            st.tuples(st.binary(min_size=1, max_size=16), st.binary(max_size=16),
                      st.binary(max_size=16)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=80)
    def test_lookup_returns_last_stored(self, entries):
        memo = Memoizer()
        latest = {}
        for func, payload, result in entries:
            memo.store(func, payload, result)
            latest[(func, payload)] = result
        for (func, payload), expected in latest.items():
            assert memo.lookup(func, payload) == expected

    @given(
        keys=st.lists(
            st.tuples(st.binary(min_size=1, max_size=8), st.binary(max_size=8)),
            min_size=1, max_size=50, unique=True,
        ),
        capacity=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, keys, capacity):
        memo = Memoizer(capacity=capacity)
        for func, payload in keys:
            memo.store(func, payload, b"r")
            assert len(memo) <= capacity


# ---------------------------------------------------------------------------
# Event kernel ordering
# ---------------------------------------------------------------------------
class TestKernelProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=80)
    def test_execution_times_monotone(self, delays):
        loop = EventLoop()
        fired = []
        for delay in delays:
            loop.schedule(delay, lambda: fired.append(loop.now))
        loop.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=80)
    def test_run_until_boundary(self, delays, horizon):
        loop = EventLoop()
        fired = []
        for delay in delays:
            loop.schedule(delay, lambda d=delay: fired.append(d))
        loop.run(until=horizon)
        assert all(d <= horizon for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= horizon)


# ---------------------------------------------------------------------------
# Batch partitioning
# ---------------------------------------------------------------------------
class TestPartitionProperties:
    @given(
        n=st.integers(min_value=0, max_value=500),
        batch_size=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=100)
    def test_partition_by_size_lossless(self, n, batch_size):
        batches = list(partition_iterator(range(n), batch_size=batch_size))
        assert [x for b in batches for x in b] == list(range(n))
        assert all(len(b) <= batch_size for b in batches)
        assert all(batches)  # no empty batches

    @given(
        n=st.integers(min_value=1, max_value=500),
        batch_count=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=100)
    def test_partition_by_count_lossless(self, n, batch_count):
        batches = list(partition_iterator(range(n), batch_count=batch_count))
        assert [x for b in batches for x in b] == list(range(n))
        assert len(batches) <= batch_count

    @given(n=st.integers(min_value=1, max_value=200), count=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60)
    def test_partition_by_count_balanced(self, n, count):
        batches = list(partition_iterator(range(n), batch_count=count))
        sizes = {len(b) for b in batches}
        assert max(sizes) - min(sizes) <= max(sizes)  # sanity
        # all batches but the last have the same size
        assert len({len(b) for b in batches[:-1]}) <= 1


# ---------------------------------------------------------------------------
# Scheduler never over-commits
# ---------------------------------------------------------------------------
class TestSchedulerProperties:
    @given(
        capacities=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8),
        n_tasks=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100)
    def test_assignments_respect_capacity(self, capacities, n_tasks, seed):
        from repro.endpoint.scheduling import ManagerView, RandomizedScheduler

        views = [ManagerView(manager_id=str(i), capacity=c) for i, c in enumerate(capacities)]
        scheduler = RandomizedScheduler(seed=seed)
        assigned = 0
        for _ in range(n_tasks):
            chosen = scheduler.select(views, None)
            if chosen is None:
                break
            assert chosen.available > 0
            chosen.outstanding += 1
            assigned += 1
        assert assigned <= sum(capacities)
        if n_tasks >= sum(capacities):
            assert assigned == sum(capacities)  # work-conserving


# ---------------------------------------------------------------------------
# REST facade robustness: arbitrary requests never raise
# ---------------------------------------------------------------------------
class TestRestProperties:
    @given(
        method=st.sampled_from(["GET", "POST", "PUT", "DELETE", "PATCH"]),
        path=st.text(max_size=60),
        body=st.dictionaries(
            st.text(max_size=12),
            st.none() | st.booleans() | st.integers() | st.text(max_size=20),
            max_size=4,
        ),
        with_token=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_any_request_yields_a_status_not_an_exception(
        self, method, path, body, with_token
    ):
        from repro.auth import AuthService
        from repro.core.rest import RestApi
        from repro.core.service import FuncXService

        auth = AuthService()
        service = FuncXService(auth=auth)
        api = RestApi(service)
        token = None
        if with_token:
            token = auth.native_client_flow(auth.register_identity("u")).token
        response = api.request(method, path, token=token, body=body)
        assert 200 <= response.status < 600
        assert isinstance(response.body, dict)
