"""Property-based tests on system-level invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers import ContainerRuntime, ContainerSpec, WarmPool
from repro.providers import SimpleScalingStrategy
from repro.sim import FailureSchedule, SimFabric
from repro.sim.platform import THETA
from repro.store.kvstore import KVStore


class _StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ---------------------------------------------------------------------------
# Warm pool: conservation and TTL honesty
# ---------------------------------------------------------------------------
class TestWarmPoolProperties:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["acquire", "release", "evict"]),
                      st.floats(min_value=0.0, max_value=10.0)),
            min_size=1, max_size=60,
        ),
        ttl=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_pool_never_exceeds_capacity_and_never_double_issues(self, ops, ttl):
        pool = WarmPool(ttl=ttl, capacity=4)
        runtime = ContainerRuntime(seed=0)
        spec = ContainerSpec(image="img")
        held: list = []
        now = 0.0
        issued_ids: set[str] = set()
        for op, dt in ops:
            now += dt
            if op == "acquire":
                instance = pool.acquire(spec.key, now)
                if instance is not None:
                    # a warm instance is never handed out twice concurrently
                    assert instance.instance_id not in issued_ids
                    issued_ids.add(instance.instance_id)
                    held.append(instance)
            elif op == "release" and held:
                instance = held.pop()
                issued_ids.discard(instance.instance_id)
                pool.release(instance, now)
            else:
                pool.evict_expired(now)
            assert pool.warm_count(spec.key) <= 4

    @given(gap=st.floats(min_value=0.0, max_value=1000.0),
           ttl=st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=60)
    def test_ttl_boundary_exact(self, gap, ttl):
        pool = WarmPool(ttl=ttl)
        runtime = ContainerRuntime(seed=1)
        inst = runtime.instantiate(ContainerSpec(image="i"))
        pool.release(inst, now=0.0)
        got = pool.acquire(inst.key, now=gap)
        if gap <= ttl:
            assert got is inst
        else:
            assert got is None


# ---------------------------------------------------------------------------
# KV store TTL
# ---------------------------------------------------------------------------
class TestKVStoreProperties:
    @given(
        entries=st.lists(
            st.tuples(st.text(min_size=1, max_size=8), st.integers(),
                      st.one_of(st.none(), st.floats(min_value=0.1, max_value=50.0))),
            min_size=1, max_size=30,
        ),
        advance=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_expiry_is_exactly_ttl_bounded(self, entries, advance):
        clock = _StepClock()
        kv = KVStore(clock=clock)
        expected: dict[str, tuple[int, float | None]] = {}
        for key, value, ttl in entries:
            kv.set(key, value, ttl=ttl)
            expected[key] = (value, ttl)
        clock.now = advance
        for key, (value, ttl) in expected.items():
            if ttl is None or advance < ttl:
                assert kv.get(key) == value
            else:
                assert kv.get(key) is None


# ---------------------------------------------------------------------------
# Simulated fabric: no task is ever lost, whatever failures happen
# ---------------------------------------------------------------------------
class TestSimFabricConservation:
    @given(
        n_tasks=st.integers(min_value=1, max_value=200),
        duration=st.sampled_from([0.0, 0.05, 0.2]),
        fail_at=st.floats(min_value=0.5, max_value=5.0),
        outage=st.floats(min_value=0.5, max_value=5.0),
        which=st.sampled_from(["manager", "endpoint"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_tasks_complete_under_any_failure_window(
        self, n_tasks, duration, fail_at, outage, which
    ):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.25, seed=1)
        fab.submit_batch(n_tasks, duration=duration)
        if which == "manager":
            schedule = FailureSchedule(
                manager_failures=((fail_at, fail_at + outage, 0),)
            )
        else:
            schedule = FailureSchedule(
                endpoint_failures=((fail_at, fail_at + outage),)
            )
        fab.apply_failures(schedule)
        report = fab.run()
        assert report.tasks_completed == n_tasks
        # every latency is positive and each task completed after starting
        assert (report.latencies > 0).all()

    @given(
        prefetch=st.integers(min_value=0, max_value=64),
        batching=st.booleans(),
        n_tasks=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_tasks_complete_for_any_knob_setting(self, prefetch, batching, n_tasks):
        fab = SimFabric(THETA, managers=2, workers_per_manager=8,
                        prefetch=prefetch, internal_batching=batching, seed=2)
        fab.submit_batch(n_tasks, duration=0.001)
        report = fab.run()
        assert report.tasks_completed == n_tasks


# ---------------------------------------------------------------------------
# Scaling strategy: decisions always respect bounds
# ---------------------------------------------------------------------------
class TestStrategyProperties:
    @given(
        loads=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=5),
        supplies=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=5),
        max_units=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80)
    def test_decisions_never_exceed_caps(self, loads, supplies, max_units):
        strategy = SimpleScalingStrategy(max_units_per_image=max_units,
                                         idle_grace=0.0)
        images = [f"img{i}" for i in range(max(len(loads), len(supplies)))]
        load = {img: loads[i % len(loads)] for i, img in enumerate(images)}
        supply = {img: supplies[i % len(supplies)] for i, img in enumerate(images)}
        for decision in strategy.decide(load, supply, now=0.0):
            current = supply.get(decision.image, 0)
            assert decision.count > 0
            if decision.action == "scale_out":
                assert current + decision.count <= max_units
            else:
                assert decision.count <= current

    @given(
        outstanding=st.integers(min_value=0, max_value=10_000),
        parallelism=st.floats(min_value=0.01, max_value=1.0),
        tasks_per_unit=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80)
    def test_target_units_sane(self, outstanding, parallelism, tasks_per_unit):
        strategy = SimpleScalingStrategy(
            parallelism=parallelism, tasks_per_unit=tasks_per_unit
        )
        target = strategy.target_units(outstanding)
        assert target >= 0
        if outstanding > 0:
            assert target >= 1
            # enough capacity for the scaled demand
            assert target * tasks_per_unit >= outstanding * parallelism - tasks_per_unit
