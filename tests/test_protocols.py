"""Unit tests for the parametric resource-protocol (typestate) engine.

Four layers:

* port parity — ``lease-ack`` is now an instance of the shared engine
  and must reproduce the PR 4 findings (same lines, same message
  shape) on the lease fixture corpus;
* the interprocedural must-release summaries behind ``credit-balance``
  (one-level call-through, receiver typing via annotations and
  ``self.attr = ClassName(...)`` bindings);
* the handler-exhaustiveness arming gate;
* registry coverage — every src module that touches a protocol
  resource must appear in the static site export the runtime
  :class:`~repro.analysis.sanitizer.ProtocolRecorder` gate consumes.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.checks import check_lease_ack
from repro.analysis.protocols import (
    LEASE_PROTOCOL,
    RECEIVER_PROTOCOLS,
    VALUE_PROTOCOLS,
    _release_summaries,
    check_credit_balance,
    check_handler_exhaustiveness,
    protocol_sites,
    run_value_protocol,
)
from repro.analysis.runner import (
    ALL_CHECKS,
    GLOBAL_CHECKS,
    iter_python_files,
)
from repro.analysis.source import load_source, module_name_for, parse_source

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def _parse(text: str, module: str = "fixtures.inline"):
    return parse_source(text, path=f"{module.replace('.', '/')}.py",
                        module=module)


def _src_sources():
    sources = []
    for path in iter_python_files(REPO_ROOT / "src"):
        rel = path.relative_to(REPO_ROOT).as_posix()
        sources.append(load_source(path, rel, module_name_for(rel)))
    return sources


# ----------------------------------------------------------------------
# port parity: lease-ack is the engine parameterized, not a rewrite
# ----------------------------------------------------------------------
class TestLeaseAckPortParity:
    def _fixture(self, name):
        text = (FIXTURES / name).read_text(encoding="utf-8")
        return parse_source(text, path=f"tests/analysis_fixtures/{name}",
                            module="fixtures.lease")

    def test_check_is_the_engine_instance(self):
        for name in ("lease_bad.py", "lease_good.py"):
            source = self._fixture(name)
            direct = list(run_value_protocol(source, LEASE_PROTOCOL))
            via_check = list(check_lease_ack(source))
            assert direct == via_check

    def test_pr4_findings_reproduced_exactly(self):
        source = self._fixture("lease_bad.py")
        findings = list(check_lease_ack(source))
        assert [f.line for f in findings] == [11, 20, 29, 34]
        first = findings[0]
        assert first.check == "lease-ack"
        assert first.message == (
            "lease(s) acquired here (held in lease) may reach the exit of "
            "drop_on_early_return() without ack/nack on some path")
        assert "ack/nack the lease" in first.hint

    def test_good_fixture_only_trips_the_waived_drop(self):
        # The raw check still sees the deliberate drop; the runner's
        # `# lint: ignore[lease-ack]` waiver removes it (the corpus test
        # asserts the post-waiver result is empty).
        source = self._fixture("lease_good.py")
        raw = list(check_lease_ack(source))
        assert [f for f in raw
                if not source.is_ignored(f.line, f.check)] == []


# ----------------------------------------------------------------------
# registry wiring
# ----------------------------------------------------------------------
def test_registry_protocols_are_wired_into_the_runner():
    assert set(VALUE_PROTOCOLS) <= set(ALL_CHECKS)
    assert set(RECEIVER_PROTOCOLS) <= set(GLOBAL_CHECKS)


# ----------------------------------------------------------------------
# interprocedural must-release summaries
# ----------------------------------------------------------------------
_SUMMARY_SRC = '''
class CreditLedger:
    pass


def refund_by_spelling(credits, n):
    credits.release(n)


def refund_by_annotation(ledger: CreditLedger, n):
    ledger.release(n)


class Window:
    def __init__(self):
        self.credits = CreditLedger()

    def _abort(self):
        self.credits.release(1)

    def noop(self):
        pass
'''


def test_release_summaries_cover_spelling_annotation_and_methods():
    source = _parse(_SUMMARY_SRC)
    summaries = _release_summaries([source], {"CreditLedger"})
    assert summaries == {
        (None, "refund_by_spelling"),
        (None, "refund_by_annotation"),
        ("Window", "_abort"),
    }


_CALL_THROUGH_SRC = '''
class CreditLedger:
    pass


class Refunder:
    def give_back(self, window):
        window.credits.release(1)


class Window:
    def __init__(self):
        self.credits = CreditLedger()
        self.refunder = Refunder()

    def dispatch_via_self(self, ok):
        self.credits.consume(1)
        if not ok:
            self._abort()
            return False
        self.credits.release(1)
        return True

    def dispatch_via_typed_attr(self, ok):
        self.credits.consume(1)
        if not ok:
            self.refunder.give_back(self)
            return False
        self.credits.release(1)
        return True

    def _abort(self):
        self.credits.release(1)
'''


def test_one_level_call_through_closes_the_consume():
    source = _parse(_CALL_THROUGH_SRC)
    assert list(check_credit_balance([source])) == []


def test_without_the_helper_the_leak_is_reported():
    broken = _CALL_THROUGH_SRC.replace(
        "            self._abort()\n", "            pass\n")
    source = _parse(broken)
    findings = list(check_credit_balance([source]))
    assert len(findings) == 1
    assert findings[0].check == "credit-balance"
    assert "without release/revoke on some path" in findings[0].message
    assert "dispatch_via_self" in findings[0].message


def test_containment_mode_reports_never_released_ledgers():
    source = _parse(
        "def take(window):\n"
        "    return window.credits.consume(1)\n")
    findings = list(check_credit_balance([source]))
    assert len(findings) == 1
    assert "never released or revoked" in findings[0].message


# ----------------------------------------------------------------------
# handler-exhaustiveness arming gate
# ----------------------------------------------------------------------
def test_wire_module_without_a_dispatch_layer_stays_quiet():
    """Scanning the message definitions alone (no isinstance consumer
    anywhere in the set) must not fire — the check arms only when the
    analyzed set contains a dispatch layer."""
    text = (FIXTURES / "wire_good.py").read_text(encoding="utf-8")
    source = parse_source(text, path="tests/analysis_fixtures/wire_good.py",
                          module="repro.transport.messages")
    assert list(check_handler_exhaustiveness([source])) == []


def test_real_wire_module_is_fully_consumed_by_src():
    """Tier-1: every concrete wire message type is dispatch-consumed
    somewhere in src/ (the whole-tree run must stay clean)."""
    sources = _src_sources()
    assert [f.message for f in check_handler_exhaustiveness(sources)] == []


# ----------------------------------------------------------------------
# registry coverage of the real fabric call sites
# ----------------------------------------------------------------------
def test_protocol_sites_cover_the_fabric_modules():
    sites = protocol_sites(_src_sources())

    def modules(protocol, verb):
        return {site.rsplit(":", 1)[0]
                for site in sites[protocol].get(verb, [])}

    assert "repro.endpoint.manager" in modules("credit", "grant")
    assert "repro.endpoint.manager" in modules("credit", "consume")
    assert "repro.endpoint.worker" in modules("credit", "release")
    assert "repro.core.stream" in modules("credit", "release")
    assert "repro.core.client" in modules("subscription", "subscribe")
    assert "repro.core.client" in modules("subscription", "unsubscribe")
    assert "repro.core.executor" in modules("stream", "subscribe")
    assert "repro.core.executor" in modules("stream", "close")
    assert "repro.core.stream" in modules("stream", "detach")


def test_every_protocol_call_site_module_is_in_the_export():
    """Independent textual scan: any src module spelling a protocol
    operation must appear in the site export (guards against the AST
    scan silently losing a module to a rename)."""
    sources = _src_sources()
    sites = protocol_sites(sources)
    covered = {site.rsplit(":", 1)[0]
               for verbs in sites.values()
               for site_list in verbs.values()
               for site in site_list}
    patterns = [
        re.compile(r"\bcredits\.(grant|revoke|consume|release)\("),
        re.compile(r"\bpubsub\.(subscribe|subscribe_prefix|unsubscribe)\("),
        re.compile(r"\bresult_stream\.subscribe\("),
    ]
    for source in sources:
        text = "\n".join(source.lines)
        if any(p.search(text) for p in patterns):
            assert source.module in covered, source.module
