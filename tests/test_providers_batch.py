"""Unit tests for the simulated batch scheduler and batch providers."""

from __future__ import annotations

import pytest

from repro.errors import AllocationExhausted, SubmitFailed
from repro.providers import (
    BatchScheduler,
    CobaltProvider,
    CondorProvider,
    GridEngineProvider,
    PBSProvider,
    QueueModel,
    SlurmProvider,
)
from repro.providers.base import Job, JobState


def make_scheduler(**kwargs) -> BatchScheduler:
    kwargs.setdefault("queue_model", QueueModel(base_delay=10.0, mean_extra=0.0))
    kwargs.setdefault("seed", 0)
    return BatchScheduler(**kwargs)


class TestBatchScheduler:
    def test_job_starts_after_queue_delay(self):
        sched = make_scheduler(total_nodes=4)
        job = Job(job_id="j1", nodes=2, submitted_at=0.0, walltime=100.0)
        sched.enqueue(job, now=0.0)
        sched.cycle(now=5.0)
        assert job.state is JobState.PENDING
        sched.cycle(now=10.0)
        assert job.state is JobState.RUNNING
        assert job.queue_delay == 10.0

    def test_waits_for_free_nodes(self):
        sched = make_scheduler(total_nodes=2)
        j1 = Job(job_id="j1", nodes=2, walltime=50.0)
        j2 = Job(job_id="j2", nodes=2, walltime=50.0)
        sched.enqueue(j1, now=0.0)
        sched.enqueue(j2, now=0.0)
        sched.cycle(now=10.0)
        assert j1.state is JobState.RUNNING
        assert j2.state is JobState.PENDING
        sched.cycle(now=60.0)  # j1 completed its walltime
        assert j1.state is JobState.COMPLETED
        assert j2.state is JobState.RUNNING

    def test_walltime_completion_time_exact(self):
        sched = make_scheduler(total_nodes=4)
        job = Job(job_id="j", nodes=1, walltime=30.0)
        sched.enqueue(job, now=0.0)
        sched.cycle(now=10.0)
        sched.cycle(now=200.0)
        assert job.state is JobState.COMPLETED
        assert job.finished_at == 40.0

    def test_backfill_lets_small_jobs_skip(self):
        sched = make_scheduler(total_nodes=4, backfill=True)
        big = Job(job_id="big", nodes=4, walltime=100.0)
        small = Job(job_id="small", nodes=1, walltime=10.0)
        blocker = Job(job_id="blocker", nodes=2, walltime=100.0)
        sched.enqueue(blocker, now=0.0)
        sched.cycle(now=10.0)   # blocker running, 2 nodes free
        sched.enqueue(big, now=10.0)
        sched.enqueue(small, now=10.0)
        sched.cycle(now=25.0)
        assert big.state is JobState.PENDING      # needs 4 nodes
        assert small.state is JobState.RUNNING    # backfilled past big

    def test_no_backfill_preserves_strict_fifo(self):
        sched = make_scheduler(total_nodes=4, backfill=False)
        blocker = Job(job_id="blocker", nodes=2, walltime=100.0)
        sched.enqueue(blocker, now=0.0)
        sched.cycle(now=10.0)
        big = Job(job_id="big", nodes=4, walltime=10.0)
        small = Job(job_id="small", nodes=1, walltime=10.0)
        sched.enqueue(big, now=10.0)
        sched.enqueue(small, now=10.0)
        sched.cycle(now=25.0)
        assert small.state is JobState.PENDING

    def test_oversized_job_fails(self):
        sched = make_scheduler(total_nodes=2)
        job = Job(job_id="huge", nodes=10)
        sched.enqueue(job, now=0.0)
        assert job.state is JobState.FAILED
        assert "exceeds partition" in job.metadata["failure"]

    def test_allocation_accounting(self):
        sched = make_scheduler(total_nodes=10, allocation_node_seconds=100.0)
        ok = Job(job_id="ok", nodes=1, walltime=50.0)
        sched.enqueue(ok, now=0.0)
        assert sched.allocation_remaining() == 50.0
        too_big = Job(job_id="big", nodes=2, walltime=50.0)
        with pytest.raises(AllocationExhausted):
            sched.enqueue(too_big, now=0.0)

    def test_early_release_refunds_allocation(self):
        sched = make_scheduler(total_nodes=10, allocation_node_seconds=100.0)
        job = Job(job_id="j", nodes=1, walltime=100.0)
        sched.enqueue(job, now=0.0)
        sched.cycle(now=10.0)
        assert sched.release(job.job_id, now=30.0)  # used 20 of 100
        assert sched.allocation_remaining() == pytest.approx(80.0)

    def test_downtime_blocks_starts(self):
        sched = make_scheduler(total_nodes=4)
        sched.schedule_downtime(5.0, 50.0)
        job = Job(job_id="j", nodes=1, walltime=10.0)
        sched.enqueue(job, now=0.0)
        sched.cycle(now=20.0)
        assert job.state is JobState.PENDING
        sched.cycle(now=55.0)
        assert job.state is JobState.RUNNING

    def test_dequeue_pending(self):
        sched = make_scheduler()
        job = Job(job_id="j", nodes=1)
        sched.enqueue(job, now=0.0)
        assert sched.dequeue("j")
        assert not sched.dequeue("j")

    def test_queue_model_sampling_bounds(self):
        import random

        model = QueueModel(base_delay=5.0, mean_extra=30.0, max_delay=40.0)
        rng = random.Random(7)
        for _ in range(200):
            delay = model.sample(rng)
            assert 5.0 <= delay <= 40.0


class TestBatchProviders:
    @pytest.mark.parametrize(
        "provider_cls,prefix",
        [
            (SlurmProvider, "#SBATCH"),
            (PBSProvider, "#PBS"),
            (CobaltProvider, "#COBALT"),
            (CondorProvider, "#CONDOR"),
            (GridEngineProvider, "#$"),
        ],
    )
    def test_submit_script_directives(self, provider_cls, prefix):
        provider = provider_cls(nodes_per_block=4, account="alloc123", seed=0)
        job = provider.submit(now=0.0, walltime=7200.0)
        script = job.metadata["script"]
        assert script.startswith("#!/bin/bash")
        assert f"{prefix} --nodes=4" in script
        assert f"{prefix} --time=02:00:00" in script
        assert f"{prefix} --account=alloc123" in script
        assert "funcx-manager" in script

    def test_job_lifecycle_through_provider(self):
        provider = SlurmProvider(
            scheduler=make_scheduler(total_nodes=8), nodes_per_block=2, seed=0
        )
        job = provider.submit(now=0.0, walltime=100.0)
        assert job.state is JobState.PENDING
        provider.poll(now=15.0)
        assert job.state is JobState.RUNNING
        assert provider.running_nodes == 2

    def test_cancel_pending(self):
        provider = SlurmProvider(scheduler=make_scheduler(), seed=0)
        job = provider.submit(now=0.0)
        assert provider.cancel(job.job_id, now=1.0)
        assert job.state is JobState.CANCELLED
        provider.poll(now=100.0)
        assert job.state is JobState.CANCELLED  # stays terminal

    def test_cancel_running_releases_nodes(self):
        sched = make_scheduler(total_nodes=2)
        provider = SlurmProvider(scheduler=sched, nodes_per_block=2, seed=0)
        job = provider.submit(now=0.0, walltime=1000.0)
        provider.poll(now=15.0)
        assert sched.free_nodes == 0
        provider.cancel(job.job_id, now=20.0)
        assert sched.free_nodes == 2

    def test_allocation_exhaustion_surfaces_as_submit_failed(self):
        sched = make_scheduler(total_nodes=10, allocation_node_seconds=10.0)
        provider = SlurmProvider(scheduler=sched, seed=0)
        with pytest.raises(SubmitFailed):
            provider.submit(now=0.0, walltime=1000.0)

    def test_scale_bounds(self):
        from repro.providers import ProviderLimits

        provider = SlurmProvider(
            scheduler=make_scheduler(total_nodes=100),
            limits=ProviderLimits(min_blocks=1, max_blocks=2, init_blocks=1),
            seed=0,
        )
        provider.submit(now=0.0)
        assert provider.can_scale_out()
        provider.submit(now=0.0)
        assert not provider.can_scale_out()
        assert provider.can_scale_in()
