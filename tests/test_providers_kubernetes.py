"""Unit tests for the Kubernetes provider (pods, caps, readiness)."""

from __future__ import annotations

import pytest

from repro.providers import KubernetesProvider
from repro.providers.base import JobState


class TestPods:
    def test_create_pod_ready_after_startup(self):
        k8s = KubernetesProvider(startup_mean=2.0, startup_jitter=0.0, seed=1)
        pod = k8s.create_pod("sleep1s", now=0.0)
        assert pod is not None
        assert not pod.is_ready(now=1.0)
        assert pod.is_ready(now=pod.ready_at)

    def test_per_image_cap(self):
        k8s = KubernetesProvider(max_pods_per_image=2, seed=1)
        assert k8s.create_pod("img", now=0.0) is not None
        assert k8s.create_pod("img", now=0.0) is not None
        assert k8s.create_pod("img", now=0.0) is None
        assert k8s.create_pod("other", now=0.0) is not None

    def test_cluster_capacity(self):
        k8s = KubernetesProvider(max_pods_per_image=10, cluster_capacity=2, seed=1)
        k8s.create_pod("a", now=0.0)
        k8s.create_pod("b", now=0.0)
        assert k8s.create_pod("c", now=0.0) is None

    def test_delete_frees_cap(self):
        k8s = KubernetesProvider(max_pods_per_image=1, seed=1)
        pod = k8s.create_pod("img", now=0.0)
        assert k8s.create_pod("img", now=1.0) is None
        assert k8s.delete_pod(pod.pod_id, now=2.0)
        assert k8s.create_pod("img", now=3.0) is not None

    def test_delete_twice_false(self):
        k8s = KubernetesProvider(seed=1)
        pod = k8s.create_pod("img", now=0.0)
        assert k8s.delete_pod(pod.pod_id, now=1.0)
        assert not k8s.delete_pod(pod.pod_id, now=2.0)

    def test_ready_pods_filter(self):
        k8s = KubernetesProvider(startup_mean=5.0, startup_jitter=0.0, seed=1)
        k8s.create_pod("img", now=0.0)
        k8s.create_pod("img", now=3.0)
        assert len(k8s.ready_pods("img", now=5.5)) == 1
        assert len(k8s.ready_pods("img", now=8.5)) == 2

    def test_pod_events_audit(self):
        k8s = KubernetesProvider(seed=1)
        pod = k8s.create_pod("img", now=1.0)
        k8s.delete_pod(pod.pod_id, now=2.0)
        assert [(t, e) for t, e, _ in k8s.pod_events] == [(1.0, "created"), (2.0, "deleted")]


class TestProviderInterface:
    def test_block_submission_creates_pod(self):
        k8s = KubernetesProvider(startup_mean=1.0, startup_jitter=0.0, seed=1)
        job = k8s.submit(now=0.0)
        assert job.state is JobState.PENDING
        k8s.poll(now=1.5)
        assert job.state is JobState.RUNNING

    def test_block_fails_when_capped(self):
        k8s = KubernetesProvider(max_pods_per_image=1, seed=1)
        k8s.submit(now=0.0)
        job = k8s.submit(now=0.0)
        assert job.state is JobState.FAILED

    def test_cancel_deletes_pod(self):
        k8s = KubernetesProvider(seed=1)
        job = k8s.submit(now=0.0)
        k8s.cancel(job.job_id, now=1.0)
        pod_id = job.metadata["pod_id"]
        assert not any(p.active for p in k8s.pods() if p.pod_id == pod_id)

    def test_validation(self):
        with pytest.raises(ValueError):
            KubernetesProvider(max_pods_per_image=0)
