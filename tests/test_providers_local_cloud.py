"""Unit tests for the local and cloud providers."""

from __future__ import annotations

import pytest

from repro.providers import AWSProvider, AzureProvider, GCPProvider, LocalProvider
from repro.providers.base import JobState, ProviderLimits


class TestLocalProvider:
    def test_immediate_start(self):
        provider = LocalProvider(max_nodes=4)
        job = provider.submit(now=0.0)
        provider.poll(now=0.0)
        assert job.state is JobState.RUNNING

    def test_startup_delay(self):
        provider = LocalProvider(max_nodes=4, startup_delay=2.0)
        job = provider.submit(now=0.0)
        provider.poll(now=1.0)
        assert job.state is JobState.PENDING
        provider.poll(now=2.5)
        assert job.state is JobState.RUNNING

    def test_node_cap(self):
        provider = LocalProvider(nodes_per_block=2, max_nodes=3)
        ok = provider.submit(now=0.0)
        provider.poll(now=0.0)
        over = provider.submit(now=0.0)
        assert ok.state is JobState.RUNNING
        assert over.state is JobState.FAILED
        assert "cap" in over.metadata["failure"]

    def test_walltime_completes(self):
        provider = LocalProvider(max_nodes=4)
        job = provider.submit(now=0.0, walltime=10.0)
        provider.poll(now=0.0)
        provider.poll(now=11.0)
        assert job.state is JobState.COMPLETED

    def test_cancel(self):
        provider = LocalProvider(max_nodes=4)
        job = provider.submit(now=0.0)
        provider.poll(now=0.0)
        assert provider.cancel(job.job_id, now=1.0)
        assert job.state is JobState.CANCELLED
        assert not provider.cancel(job.job_id, now=2.0)

    def test_invalid_max_nodes(self):
        with pytest.raises(ValueError):
            LocalProvider(max_nodes=0)


class TestCloudProviders:
    def test_boot_delay(self):
        provider = AWSProvider(boot_mean=30.0, boot_jitter=0.0, seed=1)
        job = provider.submit(now=0.0)
        provider.poll(now=10.0)
        assert job.state is JobState.PENDING
        provider.poll(now=31.0)
        assert job.state is JobState.RUNNING
        assert job.metadata["vcpus"] == 2  # m5.large

    def test_unknown_instance_type(self):
        with pytest.raises(ValueError):
            AWSProvider(instance_type="z9.mega")

    def test_quota(self):
        provider = AWSProvider(quota=1, seed=1)
        provider.submit(now=0.0)
        over = provider.submit(now=0.0)
        assert over.state is JobState.FAILED

    def test_billing_accrues_per_second(self):
        provider = AWSProvider(
            instance_type="c5n.9xlarge", boot_mean=10.0, boot_jitter=0.0, seed=1
        )
        provider.submit(now=0.0)
        provider.poll(now=10.0)
        cost = provider.accrued_cost(now=10.0 + 3600.0)
        assert cost == pytest.approx(1.944, rel=0.01)

    def test_preemption_eventually_fires(self):
        provider = AWSProvider(
            boot_mean=1.0, boot_jitter=0.0, preemption_rate=0.9, seed=5, quota=10
        )
        job = provider.submit(now=0.0)
        t = 1.0
        for _ in range(400):
            t += 1800.0
            provider.poll(now=t)
            if job.state is JobState.FAILED:
                break
        assert job.state is JobState.FAILED
        assert job.metadata["failure"] == "spot instance preempted"

    def test_on_demand_never_preempts(self):
        provider = AWSProvider(boot_mean=1.0, boot_jitter=0.0, preemption_rate=0.0, seed=5)
        job = provider.submit(now=0.0, walltime=1e9)
        for i in range(50):
            provider.poll(now=float(i * 3600))
        assert job.state is JobState.RUNNING

    def test_provider_labels(self):
        assert AWSProvider(seed=0).label == "aws"
        assert AzureProvider(seed=0).label == "azure"
        assert GCPProvider(seed=0).label == "gcp"

    def test_azure_slower_boot_default(self):
        assert AzureProvider(seed=0).boot_mean > AWSProvider(seed=0).boot_mean


class TestProviderLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProviderLimits(min_blocks=5, max_blocks=2)
        with pytest.raises(ValueError):
            ProviderLimits(parallelism=0.0)
        with pytest.raises(ValueError):
            ProviderLimits(parallelism=1.5)
        with pytest.raises(ValueError):
            ProviderLimits(init_blocks=100, max_blocks=10)

    def test_defaults_valid(self):
        limits = ProviderLimits()
        assert limits.min_blocks <= limits.init_blocks <= limits.max_blocks
