"""Unit tests for the elastic scaling strategy."""

from __future__ import annotations

import pytest

from repro.providers import SimpleScalingStrategy


class TestTargets:
    def test_target_units_ceil(self):
        s = SimpleScalingStrategy(tasks_per_unit=4)
        assert s.target_units(0) == 0
        assert s.target_units(1) == 1
        assert s.target_units(4) == 1
        assert s.target_units(5) == 2

    def test_parallelism_scales_demand(self):
        s = SimpleScalingStrategy(parallelism=0.5)
        assert s.target_units(10) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleScalingStrategy(parallelism=0.0)
        with pytest.raises(ValueError):
            SimpleScalingStrategy(tasks_per_unit=0)
        with pytest.raises(ValueError):
            SimpleScalingStrategy(min_units_per_image=5, max_units_per_image=2)


class TestDecisions:
    def test_scale_out_on_load(self):
        s = SimpleScalingStrategy(max_units_per_image=10)
        decisions = s.decide({"img": 5}, {"img": 0}, now=0.0)
        assert len(decisions) == 1
        d = decisions[0]
        assert d.action == "scale_out" and d.count == 5

    def test_scale_out_capped(self):
        s = SimpleScalingStrategy(max_units_per_image=10)
        (d,) = s.decide({"img": 20}, {"img": 0}, now=0.0)
        assert d.count == 10  # the paper's figure-6 cap

    def test_no_action_when_matched(self):
        s = SimpleScalingStrategy()
        assert s.decide({"img": 3}, {"img": 3}, now=0.0) == []

    def test_scale_in_waits_for_idle_grace(self):
        s = SimpleScalingStrategy(idle_grace=5.0)
        assert s.decide({"img": 0}, {"img": 4}, now=0.0) == []      # starts idle clock
        assert s.decide({"img": 0}, {"img": 4}, now=3.0) == []      # still in grace
        (d,) = s.decide({"img": 0}, {"img": 4}, now=6.0)
        assert d.action == "scale_in" and d.count == 4

    def test_load_resets_idle_clock(self):
        s = SimpleScalingStrategy(idle_grace=5.0)
        s.decide({"img": 0}, {"img": 2}, now=0.0)
        s.decide({"img": 1}, {"img": 2}, now=3.0)   # busy again
        assert all(
            d.action != "scale_in" for d in s.decide({"img": 0}, {"img": 2}, now=6.0)
        )

    def test_partial_scale_in_under_load_is_immediate(self):
        s = SimpleScalingStrategy()
        (d,) = s.decide({"img": 2}, {"img": 6}, now=0.0)
        assert d.action == "scale_in" and d.count == 4

    def test_min_units_floor(self):
        s = SimpleScalingStrategy(min_units_per_image=2, idle_grace=0.0)
        s.decide({"img": 0}, {"img": 5}, now=0.0)
        (d,) = s.decide({"img": 0}, {"img": 5}, now=1.0)
        assert d.count == 3  # down to the floor, not zero

    def test_multiple_images_independent(self):
        s = SimpleScalingStrategy(max_units_per_image=10)
        decisions = s.decide({"a": 4, "b": 0}, {"a": 0, "b": 0}, now=0.0)
        assert [d.image for d in decisions] == ["a"]

    def test_figure6_composition(self):
        """First burst of the paper's workload: 1x1s, 5x10s, 20x20s."""
        s = SimpleScalingStrategy(max_units_per_image=10)
        load = {"1s": 1, "10s": 5, "20s": 20}
        supply = {"1s": 0, "10s": 0, "20s": 0}
        out = {d.image: d.count for d in s.decide(load, supply, now=0.0)}
        assert out == {"1s": 1, "10s": 5, "20s": 10}

    def test_reset(self):
        s = SimpleScalingStrategy(idle_grace=5.0)
        s.decide({"img": 0}, {"img": 3}, now=0.0)
        s.reset()
        assert s.decide({"img": 0}, {"img": 3}, now=10.0) == []  # clock restarted
