"""Reliability stress tests: lossy links, flapping components, duplicates.

These exercise the at-least-once machinery end to end — the paper's
"multi-layered and reliable communication model to overcome the
unreliability of distributed endpoints" (§1).
"""

from __future__ import annotations

import time

import pytest

from repro import EndpointConfig, LocalDeployment
from repro.core.forwarder import Forwarder
from repro.endpoint.endpoint import Endpoint


def build_lossy_world(drop_probability: float, lease_timeout: float,
                      max_retries: int = 8):
    """A deployment whose service↔agent channel randomly drops messages."""
    from repro.core.service import ServiceConfig

    dep = LocalDeployment(
        seed=3, service_config=ServiceConfig(default_max_retries=max_retries)
    )
    client = dep.client()
    # Build the endpoint manually so we control the channel and forwarder.
    _identity, ep_token = dep.auth.endpoint_client_flow("lossy-ep")
    endpoint_id = dep.service.register_endpoint(ep_token.token, name="lossy-ep")
    channel = dep.network.create_channel(
        "lossy", latency=0.001, drop_probability=drop_probability
    )
    config = EndpointConfig(workers_per_node=4, heartbeat_period=0.05,
                            heartbeat_grace=6)
    forwarder = Forwarder(
        dep.service, endpoint_id, channel.left,
        heartbeat_period=config.heartbeat_period,
        heartbeat_grace=config.heartbeat_grace,
        lease_timeout=lease_timeout,
    )
    endpoint = Endpoint(
        endpoint_id=endpoint_id,
        forwarder_channel=channel.right,
        config=config,
        network=dep.network,
        nodes=1,
    )
    forwarder.start()
    endpoint.start()
    endpoint.wait_ready()
    return dep, client, endpoint_id, endpoint, forwarder


class TestLossyChannel:
    @pytest.mark.parametrize("drop", [0.05, 0.2])
    def test_all_tasks_complete_despite_drops(self, drop):
        dep, client, ep_id, endpoint, forwarder = build_lossy_world(
            drop_probability=drop, lease_timeout=0.5
        )
        try:
            def double(x):
                return 2 * x

            fid = client.register_function(double, public=True)
            futures = [client.submit(fid, ep_id, i) for i in range(30)]
            values = [f.result(timeout=60) for f in futures]
            assert values == [2 * i for i in range(30)]
        finally:
            endpoint.stop()
            forwarder.stop()
            dep.shutdown()

    def test_duplicate_completions_are_idempotent(self):
        """A timed-out lease re-dispatches a task the worker also finishes;
        the service must keep exactly one completion."""
        dep, client, ep_id, endpoint, forwarder = build_lossy_world(
            drop_probability=0.0, lease_timeout=0.2
        )
        try:
            import repro.workloads as w

            # longer than the lease timeout: guaranteed duplicate dispatch
            fid = client.register_function(w.make_sleep_function(0.6), public=True)
            future = client.submit(fid, ep_id)
            assert future.result(timeout=60) == 0.6
            task = dep.service.task_by_id(future.task_id)
            assert task.state.terminal
            # the forwarder provably re-dispatched at least once
            assert forwarder.requeue_events >= 1
            assert dep.service.tasks_completed >= 1
        finally:
            endpoint.stop()
            forwarder.stop()
            dep.shutdown()


class TestFlappingComponents:
    def test_repeated_manager_failures(self):
        from repro.core.service import ServiceConfig

        with LocalDeployment(seed=5,
                             service_config=ServiceConfig(default_max_retries=4)) as dep:
            config = EndpointConfig(workers_per_node=2, heartbeat_period=0.05,
                                    heartbeat_grace=3)
            client = dep.client()
            ep_id = dep.create_endpoint("flappy", nodes=2, config=config)
            endpoint = dep.endpoint(ep_id)
            import repro.workloads as w

            fid = client.register_function(w.make_sleep_function(0.1), public=True)
            futures = [client.submit(fid, ep_id) for _ in range(16)]
            # kill/replace a manager twice while the workload runs
            for _ in range(2):
                time.sleep(0.15)
                victim = next(iter(endpoint.managers))
                endpoint.kill_manager(victim)
                endpoint.restart_manager()
            for future in futures:
                assert future.result(timeout=60) == 0.1

    def test_endpoint_flap(self):
        from repro.core.service import ServiceConfig

        with LocalDeployment(seed=6,
                             service_config=ServiceConfig(default_max_retries=4)) as dep:
            config = EndpointConfig(workers_per_node=2, heartbeat_period=0.05,
                                    heartbeat_grace=3)
            client = dep.client()
            ep_id = dep.create_endpoint("bouncy", nodes=1, config=config)
            endpoint = dep.endpoint(ep_id)

            def identity(x):
                return x

            fid = client.register_function(identity, public=True)
            all_futures = []
            for round_number in range(2):
                all_futures.extend(
                    client.submit(fid, ep_id, (round_number, i)) for i in range(4)
                )
                endpoint.kill_endpoint()
                time.sleep(0.3)
                endpoint.recover_endpoint()
            values = [f.result(timeout=60) for f in all_futures]
            assert sorted(values) == sorted(
                (r, i) for r in range(2) for i in range(4)
            )
