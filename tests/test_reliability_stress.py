"""Reliability stress tests: lossy links, flapping components, duplicates.

These exercise the at-least-once machinery end to end — the paper's
"multi-layered and reliable communication model to overcome the
unreliability of distributed endpoints" (§1) — on chaos worlds, so every
run is also continuously checked against the system invariants
(``repro.chaos.invariants``).
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import FaultPlan, FaultStep

pytestmark = pytest.mark.chaos


def double(x):
    return 2 * x


def identity(x):
    return x


class TestLossyChannel:
    @pytest.mark.parametrize("drop", [0.05, 0.2])
    def test_all_tasks_complete_despite_drops(self, chaos_world, drop):
        world = chaos_world(seed=3)
        ep_id = world.add_endpoint("lossy-ep", nodes=1, workers_per_node=4,
                                   drop_probability=drop, lease_timeout=0.5)
        client = world.client()
        fid = client.register_function(double, public=True)
        futures = [client.submit(fid, ep_id, i) for i in range(30)]
        values = [f.result(timeout=60) for f in futures]
        assert values == [2 * i for i in range(30)]
        report = world.check_final()
        assert report.ok, report.describe()

    def test_duplicate_completions_are_idempotent(self, chaos_world):
        """A timed-out lease re-dispatches a task the worker also finishes;
        the service must keep exactly one completion (and the future must
        resolve exactly once — checked by the no-double-* invariants)."""
        world = chaos_world(seed=3)
        ep_id = world.add_endpoint("lossy-ep", nodes=1, workers_per_node=4,
                                   drop_probability=0.0, lease_timeout=0.2)
        forwarder = world.hooks["lossy-ep"].forwarder
        client = world.client()
        import repro.workloads as w

        # longer than the lease timeout: guaranteed duplicate dispatch
        fid = client.register_function(w.make_sleep_function(0.6), public=True)
        future = client.submit(fid, ep_id)
        assert future.result(timeout=60) == 0.6
        task = world.deployment.service.task_by_id(future.task_id)
        assert task.state.terminal
        # the forwarder provably re-dispatched at least once
        assert forwarder.requeue_events >= 1
        assert world.deployment.service.tasks_completed >= 1
        report = world.check_final()
        assert report.ok, report.describe()


class TestFlappingComponents:
    def test_repeated_manager_failures(self, chaos_world):
        world = chaos_world(seed=5, max_retries=4)
        ep_id = world.add_endpoint("flappy", nodes=2, workers_per_node=2,
                                   heartbeat_period=0.05, heartbeat_grace=3)
        client = world.client()
        import repro.workloads as w

        fid = client.register_function(w.make_sleep_function(0.1), public=True)
        # kill/replace a manager twice while the workload runs
        plan = FaultPlan(name="manager-flap", seed=5, steps=(
            FaultStep.make(0.15, "kill_manager", "flappy", index=0),
            FaultStep.make(0.16, "restart_manager", "flappy"),
            FaultStep.make(0.30, "kill_manager", "flappy", index=0),
            FaultStep.make(0.31, "restart_manager", "flappy"),
        ))
        world.start_plan(plan)
        futures = [client.submit(fid, ep_id) for _ in range(16)]
        schedule = world.finish_plan()
        assert schedule is not None and not schedule.errors
        for future in futures:
            assert future.result(timeout=60) == 0.1
        report = world.check_final()
        assert report.ok, report.describe()

    def test_endpoint_flap(self, chaos_world):
        world = chaos_world(seed=6, max_retries=4)
        ep_id = world.add_endpoint("bouncy", nodes=1, workers_per_node=2,
                                   heartbeat_period=0.05, heartbeat_grace=3)
        endpoint = world.hooks["bouncy"].endpoint
        client = world.client()
        fid = client.register_function(identity, public=True)
        all_futures = []
        for round_number in range(2):
            all_futures.extend(
                client.submit(fid, ep_id, (round_number, i)) for i in range(4)
            )
            endpoint.kill_endpoint()
            time.sleep(0.3)
            endpoint.recover_endpoint()
        values = [f.result(timeout=60) for f in all_futures]
        assert sorted(values) == sorted(
            (r, i) for r in range(2) for i in range(4)
        )
        report = world.check_final()
        assert report.ok, report.describe()
