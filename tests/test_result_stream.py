"""Tests for push-based result delivery (ResultStreamServer) and task
cancellation on the service.

Unit tests drive the stream deterministically: ``subscribe(auto_deliver=
False)`` skips the delivery thread and every delivery pass is an explicit
``server.step()``.  The chaos-marked classes run a live deployment and
exercise the disconnect/redelivery machinery under the no-double-resolve
invariant (counted through ``FuncXFuture.observer``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.auth import AuthService
from repro.core.futures import FuncXFuture
from repro.core.service import FuncXService, ServiceConfig
from repro.core.stream import MAX_BATCH
from repro.core.tasks import TaskState
from repro.errors import TaskCancelled
from repro.serialize import FuncXSerializer
from repro.staging.transfer import fetch_ref


@pytest.fixture
def service(clock):
    return FuncXService(auth=AuthService(clock=clock), clock=clock)


@pytest.fixture
def user_token(service):
    identity = service.auth.register_identity("alice")
    return service.auth.native_client_flow(identity).token


@pytest.fixture
def endpoint_id(service):
    _identity, token = service.auth.endpoint_client_flow("test-ep")
    return service.register_endpoint(token.token, name="test-ep")


@pytest.fixture
def function_id(service, user_token):
    def double(x):
        return 2 * x

    return service.register_function(
        user_token, "double", FuncXSerializer().serialize_function(double),
        public=True)


def submit_one(service, user_token, function_id, endpoint_id, **kwargs):
    payload = FuncXSerializer().serialize(([1], {}))
    return service.submit(user_token, function_id, endpoint_id, payload, **kwargs)


class Collector:
    """A consumer recording every delivered batch."""

    def __init__(self, sub=None, auto_ack=False):
        self.batches = []
        self.sub = sub
        self.auto_ack = auto_ack

    def __call__(self, batch):
        self.batches.append(batch)
        if self.auto_ack:
            self.sub.ack(batch.delivery_id)

    @property
    def task_ids(self):
        return [m.task_id for b in self.batches for m in b.results]


class TestSubscription:
    def test_watch_then_complete_delivers(self, service, user_token,
                                          function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        assert service.result_stream.step() == 0  # not terminal yet
        service.complete_task(task_id, success=True, result_buffer=b"payload")
        assert service.result_stream.step() == 1
        (batch,) = collector.batches
        (message,) = batch.results
        assert message.task_id == task_id
        assert message.success and not message.cancelled
        assert message.result_buffer == b"payload"
        assert batch.delivery_id and batch.subscriber_id == sub.subscriber_id

    def test_watch_already_terminal_delivers(self, service, user_token,
                                             function_id, endpoint_id):
        # Memo hits complete before the watch lands; watching a terminal
        # task must still enqueue it.
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        sub.watch(task_id)
        assert service.result_stream.step() == 1
        assert collector.task_ids == [task_id]

    def test_completions_coalesce_into_one_batch(self, service, user_token,
                                                 function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_ids = [submit_one(service, user_token, function_id, endpoint_id)
                    for _ in range(5)]
        for task_id in task_ids:
            sub.watch(task_id)
            service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.result_stream.step() == 5
        assert len(collector.batches) == 1
        assert sorted(collector.task_ids) == sorted(task_ids)

    def test_no_consumer_no_delivery(self, service, user_token,
                                     function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.result_stream.step() == 0
        assert sub.backlog == 1

    def test_credit_window_bounds_unacked(self, service, user_token,
                                          function_id, endpoint_id):
        sub = service.result_stream.subscribe(window=4, auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        for _ in range(10):
            task_id = submit_one(service, user_token, function_id, endpoint_id)
            sub.watch(task_id)
            service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.result_stream.step() == 4
        # Window exhausted: further passes stall instead of delivering.
        stalls_before = service.metrics.counter("stream.credit_stalls").value
        assert service.result_stream.step() == 0
        assert service.metrics.counter("stream.credit_stalls").value > stalls_before
        assert sub.unacked_results == 4 <= sub.window
        assert sub.backlog == 6

    def test_ack_reopens_window(self, service, user_token,
                                function_id, endpoint_id):
        sub = service.result_stream.subscribe(window=4, auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        for _ in range(10):
            task_id = submit_one(service, user_token, function_id, endpoint_id)
            sub.watch(task_id)
            service.complete_task(task_id, success=True, result_buffer=b"r")
        while service.result_stream.step() or sub.unacked_results:
            for batch in list(collector.batches):
                sub.ack(batch.delivery_id)
            collector.batches.clear()
        assert sub.backlog == 0
        assert sub.unacked_results == 0
        assert service.metrics.counter(
            "stream.results_delivered").value == 10

    def test_duplicate_completion_enqueues_once(self, service, user_token,
                                                function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        # A second terminal notification (requeue race) must not enqueue
        # the result twice.
        service.result_stream.on_task_terminal(service.task_by_id(task_id))
        sub.task_ready(task_id)
        assert service.result_stream.step() == 1
        assert service.result_stream.step() == 0

    def test_consumer_error_detaches_then_redelivers(self, service, user_token,
                                                     function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        sub.attach(lambda batch: (_ for _ in ()).throw(OSError("dropped")))
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.result_stream.step() == 0  # delivery failed
        assert sub.consumer is None               # treated as disconnected
        assert service.metrics.counter("stream.consumer_errors").value == 1
        assert sub.unacked_results == 0           # batch went back to the queue
        # Reconnect: the result redelivers under a fresh delivery id.
        collector = Collector()
        sub.attach(collector)
        assert service.result_stream.step() == 1
        assert collector.task_ids == [task_id]
        assert service.metrics.counter("stream.redeliveries").value == 1

    def test_recover_requeues_unacked_batches(self, service, user_token,
                                              function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_ids = [submit_one(service, user_token, function_id, endpoint_id)
                    for _ in range(3)]
        for task_id in task_ids:
            sub.watch(task_id)
            service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.result_stream.step() == 3
        first_delivery = collector.batches[0].delivery_id
        # The client lost the batch in flight: recover() nacks everything
        # delivered-unacked and it redelivers under a new delivery id.
        assert sub.recover() == 3
        assert sub.unacked_results == 0
        assert service.result_stream.step() == 3
        assert collector.batches[-1].delivery_id != first_delivery
        assert sorted(collector.task_ids) == sorted(task_ids * 2)

    def test_large_result_spills_to_staging(self, clock, user_token=None):
        service = FuncXService(
            auth=AuthService(clock=clock), clock=clock,
            config=ServiceConfig(stream_spill_threshold=64))
        identity = service.auth.register_identity("alice")
        token = service.auth.native_client_flow(identity).token
        _eid, ep_token = service.auth.endpoint_client_flow("ep")
        endpoint_id = service.register_endpoint(ep_token.token, name="ep")
        function_id = service.register_function(
            token, "f", FuncXSerializer().serialize_function(lambda: None),
            public=True)
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        payload = FuncXSerializer().serialize(([1], {}))
        task_id = service.submit(token, function_id, endpoint_id, payload)
        sub.watch(task_id)
        big = b"x" * 1000
        service.complete_task(task_id, success=True, result_buffer=big)
        assert service.result_stream.step() == 1
        (message,) = collector.batches[0].results
        assert message.result_buffer == b""          # shipped out of band
        assert message.result_ref is not None
        assert fetch_ref(message.result_ref) == big  # round-trips
        assert service.metrics.counter("stream.results_spilled").value == 1
        sub.ack(collector.batches[0].delivery_id)
        assert len(service.result_stream.spill) == 0  # cleaned on ack

    def test_failed_task_streams_failure(self, service, user_token,
                                         function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        service.complete_task(task_id, success=False, exception_text="boom")
        assert service.result_stream.step() == 1
        (message,) = collector.batches[0].results
        assert not message.success and not message.cancelled
        assert message.exception_text == "boom"

    def test_cancelled_task_streams_cancelled_flag(self, service, user_token,
                                                   function_id, endpoint_id):
        sub = service.result_stream.subscribe(auto_deliver=False)
        collector = Collector()
        sub.attach(collector)
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        sub.watch(task_id)
        assert service.cancel_task(user_token, task_id)
        assert service.result_stream.step() == 1
        (message,) = collector.batches[0].results
        assert message.cancelled and not message.success

    def test_close_forgets_subscription(self, service):
        sub = service.result_stream.subscribe(auto_deliver=False)
        assert service.result_stream.subscription_count() == 1
        sub.close()
        assert service.result_stream.subscription_count() == 0
        with pytest.raises(RuntimeError):
            sub.watch("t")
        with pytest.raises(RuntimeError):
            sub.attach(lambda batch: None)

    def test_subscribe_validates_window(self, service):
        with pytest.raises(ValueError):
            service.result_stream.subscribe(window=0)

    def test_batch_cap(self, service):
        sub = service.result_stream.subscribe(
            window=10 * MAX_BATCH, auto_deliver=False)
        assert sub.credits.available == 10 * MAX_BATCH  # window as granted


class TestCancelTask:
    def test_cancel_queued_task(self, service, user_token,
                                function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        assert service.cancel_task(user_token, task_id) is True
        assert service.status(user_token, task_id) is TaskState.CANCELLED
        with pytest.raises(TaskCancelled):
            service.get_result(user_token, task_id)
        assert service.tasks_cancelled == 1

    def test_cancel_twice_second_loses(self, service, user_token,
                                       function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        assert service.cancel_task(user_token, task_id) is True
        assert service.cancel_task(user_token, task_id) is False
        assert service.tasks_cancelled == 1

    def test_cancel_after_completion_loses(self, service, user_token,
                                           function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        service.complete_task(task_id, success=True, result_buffer=b"r")
        assert service.cancel_task(user_token, task_id) is False
        assert service.get_result(user_token, task_id) == b"r"

    def test_late_result_suppressed_and_counted(self, service, user_token,
                                                function_id, endpoint_id):
        task_id = submit_one(service, user_token, function_id, endpoint_id)
        assert service.cancel_task(user_token, task_id)
        # The worker's result arrives after the cancel: first outcome
        # wins — the recorded state stays CANCELLED.
        assert service.complete_task(
            task_id, success=True, result_buffer=b"late") is False
        assert service.post_cancel_results == 1
        assert service.status(user_token, task_id) is TaskState.CANCELLED
        with pytest.raises(TaskCancelled):
            service.get_result(user_token, task_id)


@pytest.fixture
def delivery_counts():
    """Install a FuncXFuture observer counting resolutions per task."""
    counts: dict[str, int] = {}
    lock = threading.Lock()

    def observer(event, fields):
        if event == "future.delivered":
            with lock:
                counts[fields["task_id"]] = counts.get(fields["task_id"], 0) + 1

    saved = FuncXFuture.observer
    FuncXFuture.observer = observer
    yield counts
    FuncXFuture.observer = saved


@pytest.mark.chaos
class TestStreamChaos:
    def test_disconnect_reconnect_resolves_every_future_once(
            self, delivery_counts):
        from repro import LocalDeployment

        def work(x):
            import time as t
            t.sleep(0.005)
            return x * 3

        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("chaos", nodes=1)
            with client.executor(ep) as executor:
                futures = [executor.submit(work, i) for i in range(30)]
                # Sever the stream mid-run (client "disconnect"), let
                # results pile into the backlog, then reconnect and
                # requeue whatever was in flight.
                time.sleep(0.05)
                executor.subscription.detach()
                time.sleep(0.1)
                executor.subscription.recover()
                executor.subscription.attach(executor._on_result_batch)
                results = [f.result(timeout=30) for f in futures]
            assert results == [i * 3 for i in range(30)]
        resolved = {f.task_id for f in futures}
        assert all(delivery_counts[t] == 1 for t in resolved)

    def test_dropped_batch_redelivers_without_double_resolve(
            self, delivery_counts):
        from repro import LocalDeployment

        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("chaos", nodes=1)
            with client.executor(ep) as executor:
                real = executor._on_result_batch
                dropped = threading.Event()

                def flaky(batch):
                    # First batch is "lost on the wire": the server
                    # detaches us and nacks it for redelivery.
                    if not dropped.is_set():
                        dropped.set()
                        raise OSError("connection reset")
                    real(batch)

                executor.subscription.detach()
                executor.subscription.attach(flaky)
                futures = [executor.submit(lambda x: x + 1, i)
                           for i in range(20)]
                assert dropped.wait(timeout=10)
                # Reconnect after the drop; the nacked batch redelivers.
                deadline = time.monotonic() + 10
                while executor.subscription.consumer is None:
                    executor.subscription.attach(flaky)
                    if time.monotonic() > deadline:
                        break
                results = [f.result(timeout=30) for f in futures]
            assert results == [i + 1 for i in range(20)]
            assert dep.metrics.counter("stream.redeliveries").value >= 1
            assert dep.metrics.counter("stream.consumer_errors").value == 1
        resolved = {f.task_id for f in futures}
        assert all(delivery_counts[t] == 1 for t in resolved)

    def test_slow_consumer_bounded_by_window(self):
        from repro import LocalDeployment

        window = 4
        tasks = 16
        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("chaos", nodes=1)
            fid = client.register_function(lambda x: x, public=True)
            sub = dep.service.result_stream.subscribe(window=window)
            peak = 0
            received: list[str] = []
            lock = threading.Lock()

            def never_acks(batch):
                # A stalled client: record the batch, never ack it.
                with lock:
                    received.append(batch.delivery_id)

            sub.attach(never_acks)
            task_ids = [client.run(fid, ep, i) for i in range(tasks)]
            for task_id in task_ids:
                sub.watch(task_id)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                unacked = sub.unacked_results
                peak = max(peak, unacked)
                if unacked == window and sub.backlog >= tasks - window:
                    break
                time.sleep(0.01)
            # Delivered-unacked never exceeds the advertised window; the
            # rest sheds into the bounded, observable backlog queue.
            assert peak <= window
            assert sub.unacked_results == window
            assert sub.backlog == tasks - window
            # The stalled client wakes up and acks: everything drains.
            with lock:
                backlog_ids = list(received)
            for delivery_id in backlog_ids:
                sub.ack(delivery_id)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with lock:
                    for delivery_id in received:
                        sub.ack(delivery_id)
                if (dep.metrics.counter("stream.results_delivered").value
                        >= tasks):
                    break
                time.sleep(0.01)
            assert dep.metrics.counter(
                "stream.results_delivered").value >= tasks
            assert sub.unacked_results <= window
            sub.close()


class TestDetachCleanup:
    """The erroring-consumer detach and close paths must give credits
    back to the window AND delete any payload spilled for the batch —
    the protocol audit's stream findings (credit + spill lifecycle)."""

    @staticmethod
    def _spilling_service(clock):
        service = FuncXService(
            auth=AuthService(clock=clock), clock=clock,
            config=ServiceConfig(stream_spill_threshold=64))
        identity = service.auth.register_identity("alice")
        token = service.auth.native_client_flow(identity).token
        _eid, ep_token = service.auth.endpoint_client_flow("ep")
        endpoint_id = service.register_endpoint(ep_token.token, name="ep")
        function_id = service.register_function(
            token, "f", FuncXSerializer().serialize_function(lambda: None),
            public=True)
        return service, token, endpoint_id, function_id

    def test_erroring_consumer_restores_credits_and_drops_spill(self, clock):
        service, token, endpoint_id, function_id = self._spilling_service(clock)
        sub = service.result_stream.subscribe(auto_deliver=False)
        window = sub.credits.available
        sub.attach(lambda batch: (_ for _ in ()).throw(OSError("dropped")))
        payload = FuncXSerializer().serialize(([1], {}))
        task_id = service.submit(token, function_id, endpoint_id, payload)
        sub.watch(task_id)
        big = b"x" * 1000
        service.complete_task(task_id, success=True, result_buffer=big)
        assert service.result_stream.step() == 0  # delivery failed, detached
        assert sub.consumer is None
        # The failed delivery must not pin the credit window or leave the
        # undelivered payload in the staging store.
        assert sub.credits.available == window
        assert len(service.result_stream.spill) == 0
        # Reconnect: redelivery re-spills from the task record.
        collector = Collector()
        sub.attach(collector)
        assert service.result_stream.step() == 1
        (message,) = collector.batches[0].results
        assert fetch_ref(message.result_ref) == big
        sub.ack(collector.batches[0].delivery_id)
        assert len(service.result_stream.spill) == 0
        assert sub.credits.available == window

    def test_close_with_unacked_spilled_batch_cleans_up(self, clock):
        service, token, endpoint_id, function_id = self._spilling_service(clock)
        sub = service.result_stream.subscribe(auto_deliver=False)
        window = sub.credits.available
        collector = Collector()
        sub.attach(collector)
        payload = FuncXSerializer().serialize(([1], {}))
        task_id = service.submit(token, function_id, endpoint_id, payload)
        sub.watch(task_id)
        service.complete_task(task_id, success=True, result_buffer=b"y" * 1000)
        assert service.result_stream.step() == 1
        assert sub.unacked_results == 1
        # Close without acking: the subscription's last act returns its
        # credits and deletes the spilled payload it never delivered.
        sub.close()
        assert sub.credits.available == window
        assert len(service.result_stream.spill) == 0
        assert service.result_stream.subscription_count() == 0
