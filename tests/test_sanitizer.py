"""Unit and integration tests for the runtime lock-order sanitizer."""

from __future__ import annotations

import threading
from pathlib import Path

from repro.analysis.lockorder import LockOrderGraph, Witness, extract_lock_graph
from repro.analysis.runner import iter_python_files
from repro.analysis.protocols import protocol_sites
from repro.analysis.sanitizer import (
    LockOrderRecorder,
    ProtocolRecorder,
    RecordedLedger,
    SanitizedLock,
    sanitize_ledger,
    sanitize_lock,
    sanitize_pubsub,
)
from repro.analysis.source import load_source, module_name_for
from repro.fabric import LocalDeployment
from repro.metrics.registry import MetricsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.step = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _locks(recorder, *names):
    return [SanitizedLock(threading.Lock(), name, recorder) for name in names]


class TestEdgeRecording:
    def test_nested_acquisition_records_instance_and_class_edge(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "A._lock", "B._lock")
        with a:
            with b:
                pass
        assert recorder.instance_edges() == {
            (a.instance_name, b.instance_name): 1}
        graph = recorder.class_graph()
        assert graph.has_edge("A._lock", "B._lock")
        assert not graph.has_edge("B._lock", "A._lock")

    def test_reentrant_same_instance_is_not_an_edge(self):
        recorder = LockOrderRecorder()
        inner = threading.RLock()
        lock = SanitizedLock(inner, "A._lock", recorder)
        with lock:
            with lock:
                pass
        assert recorder.instance_edges() == {}

    def test_two_instances_of_one_class_collapse_in_class_graph(self):
        recorder = LockOrderRecorder()
        q1, q2 = _locks(recorder, "Q._lock", "Q._lock")
        with q1:
            with q2:
                pass
        # instance edge exists, class-level self-edge is dropped on export
        assert len(recorder.instance_edges()) == 1
        assert recorder.class_graph().edges == {}

    def test_abba_nesting_detects_cycle_live(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "A._lock", "B._lock")
        with a:
            with b:
                pass
        assert recorder.cycles == []
        with b:
            with a:
                pass
        assert len(recorder.cycles) == 1
        cycle = recorder.cycles[0]
        assert set(cycle.nodes) == {a.instance_name, b.instance_name}
        assert "lock-order cycle observed at runtime" in cycle.format()

    def test_consistent_order_never_reports_a_cycle(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "A._lock", "B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert recorder.cycles == []


class TestMetricsExport:
    def test_acquisition_and_contention_counters(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        clock.step = 0.01  # every clock() call advances 10ms -> "contended"
        recorder = LockOrderRecorder(metrics=metrics, clock=clock)
        (a,) = _locks(recorder, "A._lock")
        with a:
            pass
        assert metrics.counter("sanitizer.lock_acquisitions").value == 1
        assert metrics.counter("sanitizer.lock_contention").value == 1
        assert recorder.acquisitions == 1

    def test_hold_time_outlier_flagged(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        recorder = LockOrderRecorder(metrics=metrics, clock=clock,
                                     hold_outlier_seconds=0.25)
        (a,) = _locks(recorder, "A._lock")
        a.acquire()
        clock.now += 10.0
        a.release()
        assert len(recorder.outliers) == 1
        assert recorder.outliers[0].lock == "A._lock"
        assert recorder.outliers[0].seconds >= 10.0
        assert metrics.counter("sanitizer.lock_hold_outliers").value == 1

    def test_cycle_counter_increments(self):
        metrics = MetricsRegistry()
        recorder = LockOrderRecorder(metrics=metrics)
        a, b = _locks(recorder, "A._lock", "B._lock")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert metrics.counter("sanitizer.lock_order_cycles").value == 1


class TestConditionProtocol:
    def test_wait_notify_roundtrip(self):
        recorder = LockOrderRecorder()
        cond = SanitizedLock(threading.Condition(), "Q._lock", recorder)
        ready = []

        def consumer():
            with cond:
                while not ready:
                    cond.wait(timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        with cond:
            ready.append(1)
            cond.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert recorder.cycles == []

    def test_wait_releases_held_stack(self):
        # While a thread sleeps in cond.wait() it does NOT hold the lock;
        # edges recorded by other threads during that window must not
        # originate from the waiter's stale stack entry.
        recorder = LockOrderRecorder()
        cond = SanitizedLock(threading.Condition(), "Q._lock", recorder)
        other = SanitizedLock(threading.Lock(), "R._lock", recorder)
        entered = threading.Event()
        release = threading.Event()

        def waiter():
            with cond:
                entered.set()
                cond.wait_for(release.is_set, timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert entered.wait(timeout=5.0)
        # main thread takes both locks in Q -> R order while the waiter
        # sleeps; if the waiter's stack still claimed Q this would be
        # impossible (Q is actually free only inside wait)
        with cond:
            with other:
                release.set()
            cond.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        graph = recorder.class_graph()
        assert graph.has_edge("Q._lock", "R._lock")
        assert not graph.has_edge("R._lock", "Q._lock")
        assert recorder.cycles == []


class TestSanitizeHelper:
    def test_wraps_and_is_idempotent(self):
        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

        recorder = LockOrderRecorder()
        holder = Holder()
        wrapped = sanitize_lock(holder, recorder)
        assert isinstance(holder._lock, SanitizedLock)
        assert wrapped.class_name == "Holder._lock"
        assert sanitize_lock(holder, recorder) is wrapped


class TestDeploymentIntegration:
    def test_sanitized_deployment_runs_and_stays_within_static_graph(self):
        def add(x, y):
            return x + y

        with LocalDeployment(sanitize_locks=True) as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint("sanitized", nodes=1)
            fid = client.register_function(add)
            future = client.submit(fid, ep, 2, 3)
            assert future.result(timeout=30) == 5
            recorder = deployment.lock_recorder
            assert recorder is not None
            assert recorder.acquisitions > 0
            assert recorder.cycles == []
            runtime = recorder.class_graph()

        sources = [load_source(p, str(p.relative_to(REPO_ROOT)),
                               module_name_for(p))
                   for p in iter_python_files(REPO_ROOT / "src")]
        static = extract_lock_graph(sources)
        assert runtime.is_subgraph_of(static), (
            f"runtime lock-order edges unknown to the static graph: "
            f"{runtime.missing_from(static)}")

    def test_unsanitized_deployment_has_no_recorder(self):
        with LocalDeployment() as deployment:
            assert deployment.lock_recorder is None


class TestProtocolRecorderUnits:
    def test_recorded_ledger_counts_effective_amounts(self):
        from repro.core.flowcontrol import CreditLedger

        class Holder:
            def __init__(self):
                self.credits = CreditLedger()

        recorder = ProtocolRecorder()
        holder = Holder()
        ledger = sanitize_ledger(holder, recorder, strict=True)
        assert isinstance(holder.credits, RecordedLedger)
        assert sanitize_ledger(holder, recorder, strict=True) is ledger

        holder.credits.grant(3)
        assert holder.credits.consume(2) == 2
        assert holder.credits.release(1) == 1
        # Clamped duplicate release: the ledger only takes back what is
        # outstanding, and the recorder counts the effective amount.
        holder.credits.release(5)
        assert recorder.count("credit", "grant") == 3
        assert recorder.count("credit", "consume") == 2
        assert recorder.count("credit", "release") == 2
        assert ledger.released_seen <= ledger.consumed_seen
        assert recorder.ledgers() == [ledger]

    def test_sanitized_pubsub_balances_unsubscribes(self):
        from repro.store.pubsub import PubSub

        recorder = ProtocolRecorder()
        pubsub = sanitize_pubsub(PubSub(), recorder)
        assert sanitize_pubsub(pubsub, recorder) is pubsub
        token = pubsub.subscribe("task.1", lambda t, m: None)
        assert pubsub.unsubscribe(token) is True
        # Idempotent second unsubscribe must not count as an event.
        assert pubsub.unsubscribe(token) is False
        assert recorder.count("subscription", "subscribe") == 1
        assert recorder.count("subscription", "unsubscribe") == 1


class TestProtocolRecorderIntegration:
    def test_runtime_events_stay_within_static_sites(self):
        """The acceptance gate: every (protocol, verb) pair a sanitized
        deployment observes has a lexical site the static engine
        analyzed, and the balance laws the checks promise hold."""

        def add(x, y):
            return x + y

        with LocalDeployment(sanitize_locks=True) as deployment:
            client = deployment.client()
            ep = deployment.create_endpoint("protocols", nodes=1)
            fid = client.register_function(add)
            assert client.submit(fid, ep, 2, 3).result(timeout=30) == 5
            with client.executor(ep) as pool:
                assert pool.submit(fid, 4, 5).result(timeout=30) == 9
            recorder = deployment.protocol_recorder
            assert recorder is not None
            observed = recorder.observed()
            assert ("subscription", "subscribe") in observed
            assert ("subscription", "unsubscribe") in observed
            assert ("credit", "consume") in observed
            assert ("credit", "release") in observed
            assert ("stream", "subscribe") in observed
            assert ("stream", "close") in observed
            for ledger in recorder.ledgers():
                assert ledger.released_seen <= ledger.consumed_seen
            assert (recorder.count("subscription", "unsubscribe")
                    <= recorder.count("subscription", "subscribe"))

        sources = [load_source(p, str(p.relative_to(REPO_ROOT)),
                               module_name_for(p))
                   for p in iter_python_files(REPO_ROOT / "src")]
        sites = protocol_sites(sources)
        for protocol, verb in sorted(observed):
            assert sites[protocol].get(verb), (
                f"runtime event ({protocol}, {verb}) has no static site")

    def test_unsanitized_deployment_has_no_protocol_recorder(self):
        with LocalDeployment() as deployment:
            assert deployment.protocol_recorder is None


class TestAccessRecorderUnits:
    """The thread-role runtime twin: class-swap tracking, role tagging,
    sampling, and idempotency."""

    def _tracked_counter(self, recorder):
        from repro.analysis.sanitizer import sanitize_access

        class Counter:
            def __init__(self):
                self.value = 0
                self.untracked = 0

            def bump(self):
                self.value += 1

        counter = Counter()
        sanitize_access(counter, recorder, ("value",), class_name="Counter")
        return counter

    def test_reads_and_writes_tagged_with_thread_role(self):
        from repro.analysis.sanitizer import AccessRecorder

        recorder = AccessRecorder()
        counter = self._tracked_counter(recorder)
        counter.bump()          # read + write from MainThread
        _ = counter.value       # read
        counter.untracked += 1  # not tracked

        observed = recorder.observed_roles()
        assert set(observed) == {"Counter.value"}
        assert observed["Counter.value"] == frozenset({"main"})
        kinds = {kind for (_, _, kind) in recorder.counts()}
        assert kinds == {"read", "write"}

    def test_cross_role_attrs_needs_two_roles(self):
        from repro.analysis.sanitizer import AccessRecorder

        recorder = AccessRecorder()
        counter = self._tracked_counter(recorder)
        counter.bump()
        assert recorder.cross_role_attrs() == set()

        worker = threading.Thread(target=counter.bump, name="worker-9")
        worker.start()
        worker.join()
        assert recorder.cross_role_attrs() == {"Counter.value"}
        assert recorder.cross_role_writers() == {"Counter.value"}
        assert recorder.observed_roles()["Counter.value"] == frozenset(
            {"main", "worker"})

    def test_unknown_thread_names_collapse_onto_callback(self):
        from repro.analysis.sanitizer import AccessRecorder

        recorder = AccessRecorder()
        counter = self._tracked_counter(recorder)
        anon = threading.Thread(target=counter.bump)  # "Thread-N"
        anon.start()
        anon.join()
        assert recorder.observed_roles()["Counter.value"] == frozenset(
            {"callback"})

    def test_sampling_thins_counts_but_never_roles(self):
        from repro.analysis.sanitizer import AccessRecorder

        recorder = AccessRecorder(sample_every=10)
        counter = self._tracked_counter(recorder)
        for _ in range(30):
            counter.bump()
        # 30 bumps = 30 reads + 30 writes on one key: ticks 0..59, every
        # 10th sampled -> 6 sampled accesses total
        assert sum(recorder.counts().values()) == 6
        # but the role evidence is exact
        assert recorder.observed_roles()["Counter.value"] == frozenset(
            {"main"})

    def test_sanitize_access_is_idempotent(self):
        from repro.analysis.sanitizer import AccessRecorder, sanitize_access

        recorder = AccessRecorder()
        counter = self._tracked_counter(recorder)
        cls = type(counter)
        sanitize_access(counter, recorder, ("value",), class_name="Counter")
        assert type(counter) is cls

    def test_unsanitized_deployment_has_no_access_recorder(self):
        with LocalDeployment() as deployment:
            assert deployment.access_recorder is None
