"""Unit tests for the routed-buffer wire format."""

from __future__ import annotations

import pytest

from repro.errors import DeserializationError
from repro.serialize.buffers import BufferHeader, pack_buffer, peek_header, unpack_buffer


class TestPackUnpack:
    def test_roundtrip(self):
        buf = pack_buffer("01", "task-123", b"payload bytes")
        header, payload = unpack_buffer(buf)
        assert header == BufferHeader(method="01", routing_tag="task-123", payload_length=13)
        assert payload == b"payload bytes"

    def test_empty_payload(self):
        header, payload = unpack_buffer(pack_buffer("00", "t", b""))
        assert payload == b""
        assert header.payload_length == 0

    def test_empty_tag(self):
        header, _ = unpack_buffer(pack_buffer("00", "", b"x"))
        assert header.routing_tag == ""

    def test_unicode_tag(self):
        header, _ = unpack_buffer(pack_buffer("00", "tâche-€", b"x"))
        assert header.routing_tag == "tâche-€"

    def test_binary_payload_with_newlines(self):
        payload = b"\n\x1f\n\x00binary\nmess"
        header, out = unpack_buffer(pack_buffer("01", "tag", payload))
        assert out == payload

    def test_large_payload(self):
        payload = bytes(range(256)) * 4096
        _, out = unpack_buffer(pack_buffer("01", "big", payload))
        assert out == payload


class TestValidation:
    def test_bad_method_length(self):
        with pytest.raises(ValueError):
            pack_buffer("001", "t", b"")
        with pytest.raises(ValueError):
            pack_buffer("1", "t", b"")

    def test_tag_with_separator_rejected(self):
        with pytest.raises(ValueError):
            pack_buffer("00", "bad\x1ftag", b"")

    def test_tag_with_newline_rejected(self):
        with pytest.raises(ValueError):
            pack_buffer("00", "bad\ntag", b"")

    def test_truncated_payload(self):
        buf = pack_buffer("00", "t", b"12345678")
        with pytest.raises(DeserializationError):
            unpack_buffer(buf[:-3])

    def test_missing_terminator(self):
        with pytest.raises(DeserializationError):
            unpack_buffer(b"00\x1ftag\x1f5")

    def test_malformed_header_fields(self):
        with pytest.raises(DeserializationError):
            unpack_buffer(b"00\x1fonly-two-fields\n")

    def test_non_numeric_length(self):
        with pytest.raises(DeserializationError):
            unpack_buffer(b"00\x1ft\x1fxyz\npayload")

    def test_negative_length(self):
        with pytest.raises(DeserializationError):
            unpack_buffer(b"00\x1ft\x1f-5\npayload")


class TestPeek:
    def test_peek_does_not_need_payload(self):
        buf = pack_buffer("02", "route-me", b"abcdef")
        header = peek_header(buf)
        assert header.routing_tag == "route-me"
        assert header.method == "02"

    def test_peek_on_header_only_prefix(self):
        buf = pack_buffer("02", "route-me", b"abcdef")
        end = buf.find(b"\n") + 1
        header = peek_header(buf[:end])
        assert header.payload_length == 6
