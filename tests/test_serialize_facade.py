"""Unit tests for the serialization facade (ordered-fallback behaviour)."""

from __future__ import annotations

import pytest

from repro.errors import DeserializationError, SerializationError
from repro.serialize import FuncXSerializer
from repro.serialize.buffers import peek_header
from repro.serialize.methods import JsonMethod, PickleMethod, SourceCodeMethod
from repro.serialize.traceback import RemoteExceptionWrapper


def top_level_square(x):
    return x * x


class TestDataSerialization:
    def setup_method(self):
        self.s = FuncXSerializer()

    def test_json_fast_path_used_for_plain_data(self):
        buf = self.s.serialize({"a": [1, 2]})
        assert peek_header(buf).method == JsonMethod.identifier

    def test_pickle_fallback_for_non_json(self):
        buf = self.s.serialize({1, 2, 3})
        assert peek_header(buf).method == PickleMethod.identifier
        assert self.s.deserialize(buf) == {1, 2, 3}

    def test_roundtrip_various(self):
        for obj in (None, 1, "x", [1, {"k": (2, 3)}], {"s": "v"}):
            assert self.s.deserialize(self.s.serialize(obj)) == obj

    def test_routing_tag_preserved(self):
        buf = self.s.serialize([1], routing_tag="task-42")
        assert self.s.routing_tag(buf) == "task-42"

    def test_unserializable_raises_with_context(self):
        import threading

        with pytest.raises(SerializationError) as info:
            self.s.serialize(threading.Lock())
        assert "tried" in str(info.value)

    def test_unknown_method_id(self):
        from repro.serialize.buffers import pack_buffer

        with pytest.raises(DeserializationError):
            self.s.deserialize(pack_buffer("99", "t", b"x"))


class TestCodeSerialization:
    def setup_method(self):
        self.s = FuncXSerializer()

    def test_function_uses_source_method(self):
        buf = self.s.serialize(top_level_square)
        assert peek_header(buf).method == SourceCodeMethod.identifier
        func = self.s.deserialize(buf)
        assert func(7) == 49

    def test_lambda_falls_back_to_code_pickle(self):
        buf = self.s.serialize(lambda x: x + 1)
        func = self.s.deserialize(buf)
        assert func(1) == 2

    def test_closure_roundtrip(self):
        base = 100

        def offset(x):
            return x + base

        func = self.s.deserialize(self.s.serialize(offset))
        assert func(1) == 101

    def test_serialize_function_rejects_non_callable(self):
        with pytest.raises(SerializationError):
            self.s.serialize_function(42)

    def test_reconstructed_function_is_independent(self):
        func = self.s.deserialize(self.s.serialize(top_level_square))
        assert func is not top_level_square


class TestExceptionTransport:
    def setup_method(self):
        self.s = FuncXSerializer()

    def _wrapper(self):
        try:
            raise KeyError("missing-key")
        except KeyError as exc:
            return RemoteExceptionWrapper(exc)

    def test_wrapper_roundtrip(self):
        out = self.s.deserialize(self.s.serialize(self._wrapper()))
        assert isinstance(out, RemoteExceptionWrapper)
        assert out.exc_type_name == "KeyError"

    def test_reraise_restores_type(self):
        out = self.s.deserialize(self.s.serialize(self._wrapper()))
        with pytest.raises(KeyError):
            out.reraise()

    def test_reraise_carries_cause(self):
        from repro.errors import TaskExecutionFailed

        out = self.s.deserialize(self.s.serialize(self._wrapper()))
        try:
            out.reraise()
        except KeyError as exc:
            assert isinstance(exc.__cause__, TaskExecutionFailed)


class TestCustomOrdering:
    def test_pickle_only_ordering(self):
        s = FuncXSerializer(data_methods=[PickleMethod()])
        buf = s.serialize({"a": 1})
        assert peek_header(buf).method == PickleMethod.identifier

    def test_conflicting_ids_rejected(self):
        class Impostor(JsonMethod):
            identifier = PickleMethod.identifier

        with pytest.raises(ValueError):
            FuncXSerializer(data_methods=[Impostor(), PickleMethod()])

    def test_check_roundtrip_helper(self):
        s = FuncXSerializer()
        assert s.check_roundtrip([1, 2, 3])
        assert not s.check_roundtrip(object())
