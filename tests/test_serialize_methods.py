"""Unit tests for the individual serialization methods."""

from __future__ import annotations

import pytest

from repro.errors import DeserializationError, SerializationError
from repro.serialize.methods import (
    CodePickleMethod,
    JsonMethod,
    PickleMethod,
    SourceCodeMethod,
    TracebackMethod,
)
from repro.serialize.traceback import RemoteExceptionWrapper


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
class TestJsonMethod:
    def test_roundtrip_dict(self):
        m = JsonMethod()
        obj = {"a": 1, "b": [1.5, "x", None, True]}
        assert m.deserialize(m.serialize(obj)) == obj

    def test_roundtrip_scalars(self):
        m = JsonMethod()
        for obj in (0, -3, 2.5, "hello", None, True, False, []):
            assert m.deserialize(m.serialize(obj)) == obj

    def test_rejects_bytes(self):
        with pytest.raises(SerializationError):
            JsonMethod().serialize(b"raw")

    def test_rejects_set(self):
        with pytest.raises(SerializationError):
            JsonMethod().serialize({1, 2})

    def test_rejects_custom_object(self):
        class Thing:
            pass

        with pytest.raises(SerializationError):
            JsonMethod().serialize(Thing())

    def test_corrupt_payload(self):
        with pytest.raises(DeserializationError):
            JsonMethod().deserialize(b"{not json")

    def test_identifier(self):
        assert JsonMethod.identifier == "00"
        assert not JsonMethod.for_code


# ---------------------------------------------------------------------------
# Pickle
# ---------------------------------------------------------------------------
class TestPickleMethod:
    def test_roundtrip_complex_object(self):
        m = PickleMethod()
        obj = {"nested": [(1, 2), {3, 4}, {"k": bytearray(b"v")}]}
        assert m.deserialize(m.serialize(obj)) == obj

    def test_roundtrip_numpy(self):
        import numpy as np

        m = PickleMethod()
        arr = np.arange(10.0).reshape(2, 5)
        out = m.deserialize(m.serialize(arr))
        assert (out == arr).all()

    def test_rejects_unpicklable(self):
        import threading

        with pytest.raises(SerializationError):
            PickleMethod().serialize(threading.Lock())

    def test_corrupt_payload(self):
        with pytest.raises(DeserializationError):
            PickleMethod().deserialize(b"\x00\x01garbage")


# ---------------------------------------------------------------------------
# Source code
# ---------------------------------------------------------------------------
def module_level_double(x):
    return 2 * x


def module_level_with_imports(n):
    import math

    return math.sqrt(n)


class TestSourceCodeMethod:
    def test_roundtrip_simple(self):
        m = SourceCodeMethod()
        func = m.deserialize(m.serialize(module_level_double))
        assert func(21) == 42
        assert func.__name__ == "module_level_double"

    def test_roundtrip_with_body_import(self):
        m = SourceCodeMethod()
        func = m.deserialize(m.serialize(module_level_with_imports))
        assert func(16) == 4.0

    def test_rejects_lambda(self):
        with pytest.raises(SerializationError):
            SourceCodeMethod().serialize(lambda x: x)

    def test_rejects_non_function(self):
        with pytest.raises(SerializationError):
            SourceCodeMethod().serialize(42)

    def test_rejects_builtin(self):
        with pytest.raises(SerializationError):
            SourceCodeMethod().serialize(len)

    def test_is_code_method(self):
        assert SourceCodeMethod.for_code


# ---------------------------------------------------------------------------
# Code pickle (dill equivalent)
# ---------------------------------------------------------------------------
class TestCodePickleMethod:
    def test_roundtrip_lambda(self):
        m = CodePickleMethod()
        func = m.deserialize(m.serialize(lambda x, y=3: x * y))
        assert func(4) == 12
        assert func(4, y=5) == 20

    def test_roundtrip_closure(self):
        m = CodePickleMethod()

        def make_adder(k):
            def add(x):
                return x + k

            return add

        func = m.deserialize(m.serialize(make_adder(10)))
        assert func(5) == 15

    def test_roundtrip_defaults(self):
        m = CodePickleMethod()

        def f(a, b=7, c="x"):
            return (a, b, c)

        out = m.deserialize(m.serialize(f))
        assert out(1) == (1, 7, "x")

    def test_rejects_non_function(self):
        with pytest.raises(SerializationError):
            CodePickleMethod().serialize("nope")

    def test_rejects_unpicklable_closure(self):
        import threading

        lock = threading.Lock()

        def f():
            return lock

        with pytest.raises(SerializationError):
            CodePickleMethod().serialize(f)

    def test_corrupt_payload(self):
        with pytest.raises(DeserializationError):
            CodePickleMethod().deserialize(b"nonsense")


# ---------------------------------------------------------------------------
# Traceback method
# ---------------------------------------------------------------------------
class TestTracebackMethod:
    def _make_wrapper(self) -> RemoteExceptionWrapper:
        try:
            raise ValueError("boom")
        except ValueError as exc:
            return RemoteExceptionWrapper(exc)

    def test_roundtrip(self):
        m = TracebackMethod()
        wrapper = self._make_wrapper()
        out = m.deserialize(m.serialize(wrapper))
        assert isinstance(out, RemoteExceptionWrapper)
        assert out.exc_type_name == "ValueError"
        assert "boom" in out.format()

    def test_rejects_plain_exception(self):
        with pytest.raises(SerializationError):
            TracebackMethod().serialize(ValueError("x"))

    def test_format_contains_frames(self):
        wrapper = self._make_wrapper()
        text = wrapper.format()
        assert "Traceback (most recent call last):" in text
        assert "_make_wrapper" in text


# ---------------------------------------------------------------------------
# NumPy buffer method
# ---------------------------------------------------------------------------
class TestNumpyMethod:
    def _method(self):
        from repro.serialize.methods import NumpyMethod

        return NumpyMethod()

    def test_roundtrip_2d(self):
        import numpy as np

        m = self._method()
        arr = np.arange(12.0).reshape(3, 4)
        out = m.deserialize(m.serialize(arr))
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert (out == arr).all()

    def test_roundtrip_scalar_shapes(self):
        import numpy as np

        m = self._method()
        for arr in (np.array(5), np.array([1, 2, 3], dtype=np.int32),
                    np.zeros((2, 0, 3))):
            out = m.deserialize(m.serialize(arr))
            assert out.shape == arr.shape and out.dtype == arr.dtype

    def test_result_is_writable(self):
        import numpy as np

        m = self._method()
        out = m.deserialize(m.serialize(np.ones(4)))
        out[0] = 99.0  # frombuffer views are read-only; we must copy

    def test_rejects_non_array(self):
        with pytest.raises(SerializationError):
            self._method().serialize([1, 2, 3])

    def test_rejects_object_dtype(self):
        import numpy as np

        with pytest.raises(SerializationError):
            self._method().serialize(np.array([object()]))

    def test_rejects_non_contiguous(self):
        import numpy as np

        arr = np.arange(16.0).reshape(4, 4).T  # F-ordered view
        with pytest.raises(SerializationError):
            self._method().serialize(arr)

    def test_corrupt_payload(self):
        with pytest.raises(DeserializationError):
            self._method().deserialize(b"nonsense")

    def test_facade_routes_arrays_to_numpy_method(self):
        import numpy as np

        from repro.serialize import FuncXSerializer
        from repro.serialize.buffers import peek_header
        from repro.serialize.methods import NumpyMethod

        s = FuncXSerializer()
        arr = np.arange(100, dtype=np.float32)
        buf = s.serialize(arr)
        assert peek_header(buf).method == NumpyMethod.identifier
        assert (s.deserialize(buf) == arr).all()

    def test_facade_still_pickles_object_arrays(self):
        import numpy as np

        from repro.serialize import FuncXSerializer

        s = FuncXSerializer()
        arr = np.array([{"a": 1}, None], dtype=object)
        out = s.deserialize(s.serialize(arr))
        assert out[0] == {"a": 1}
