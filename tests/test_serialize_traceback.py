"""Focused tests for remote-exception transport."""

from __future__ import annotations

import pytest

from repro.errors import TaskExecutionFailed
from repro.serialize.traceback import (
    FrameSummary,
    RemoteExceptionWrapper,
    SerializableTraceback,
)


def _raise_nested():
    def inner():
        raise KeyError("deep")

    inner()


class TestSerializableTraceback:
    def test_captures_frames(self):
        try:
            _raise_nested()
        except KeyError as exc:
            tb = SerializableTraceback.from_exception(exc)
        names = [frame.name for frame in tb.frames]
        assert "_raise_nested" in names
        assert "inner" in names

    def test_format_is_python_style(self):
        try:
            _raise_nested()
        except KeyError as exc:
            tb = SerializableTraceback.from_exception(exc)
        text = tb.format()
        assert text.startswith("Traceback (most recent call last):")
        assert 'File "' in text

    def test_frame_summary_format(self):
        frame = FrameSummary("script.py", 12, "run", "x = 1/0")
        line = frame.format()
        assert 'File "script.py", line 12, in run' in line
        assert "x = 1/0" in line

    def test_empty_traceback(self):
        tb = SerializableTraceback.from_exception(ValueError("no tb"))
        assert tb.frames == ()
        assert tb.format() == "Traceback (most recent call last):\n"


class TestRemoteExceptionWrapper:
    def test_reraise_restores_original_type(self):
        try:
            raise LookupError("lost")
        except LookupError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        with pytest.raises(LookupError, match="lost"):
            wrapper.reraise()

    def test_unpicklable_exception_degrades_gracefully(self):
        import threading

        class CursedError(Exception):
            def __init__(self):
                super().__init__("cursed")
                self.lock = threading.Lock()  # unpicklable baggage

        try:
            raise CursedError()
        except CursedError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        assert wrapper._exc_pickle is None
        with pytest.raises(TaskExecutionFailed, match="cursed"):
            wrapper.reraise()

    def test_record_roundtrip(self):
        try:
            raise ValueError("payload")
        except ValueError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        clone = RemoteExceptionWrapper.from_record(wrapper.to_record())
        assert clone.exc_type_name == "ValueError"
        assert clone.exc_str == "payload"
        assert "payload" in clone.format()

    def test_format_ends_with_exception_line(self):
        try:
            raise RuntimeError("tail")
        except RuntimeError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        assert wrapper.format().rstrip().endswith("RuntimeError: tail")

    def test_locally_defined_exception_type(self):
        """Exception classes defined inside functions cannot be pickled by
        reference; the wrapper must still transport them as text."""

        class LocalError(Exception):
            pass

        try:
            raise LocalError("local")
        except LocalError as exc:
            wrapper = RemoteExceptionWrapper(exc)
        assert wrapper.exc_type_name == "LocalError"
        with pytest.raises((LocalError, TaskExecutionFailed)):
            wrapper.reraise()
