"""The sharded service plane: shard map, per-shard accounting, routing.

Covers the consistent-hash :class:`~repro.core.shard.ShardMap`, the
per-shard O(1) accounting block (the satellite fix for the old
full-table scans), drain/kill/restart lifecycle, and the facade's
cross-shard routing — including a live multi-shard deployment pushing
results through the stream router.
"""

from __future__ import annotations

import time
import uuid

import pytest

from repro.auth import AuthService
from repro.core.service import FuncXService, ServiceConfig
from repro.core.shard import ShardMap, _ShardPacer
from repro.core.tasks import TaskState
from repro.errors import ShardDraining, TaskNotFound
from repro.serialize import FuncXSerializer


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def make_service(shards: int, clock=None, **config) -> FuncXService:
    return FuncXService(
        auth=AuthService(clock=clock) if clock else AuthService(),
        config=ServiceConfig(shards=shards, **config),
        clock=clock,
    )


def user_token(service, name="alice"):
    identity = service.auth.register_identity(name)
    return service.auth.native_client_flow(identity).token


def endpoint_on(service, shard_index: int, attempts: int = 512) -> str:
    """Register endpoints until one lands on ``shard_index``."""
    for i in range(attempts):
        _ident, tok = service.auth.endpoint_client_flow(f"ep-{shard_index}-{i}")
        ep = service.register_endpoint(tok.token, name=f"ep-{shard_index}-{i}")
        if service.shard_map.shard_for_endpoint(ep) == shard_index:
            return ep
    raise AssertionError(f"no endpoint landed on shard {shard_index}")


def any_endpoint(service) -> str:
    _ident, tok = service.auth.endpoint_client_flow("ep")
    return service.register_endpoint(tok.token, name="ep")


def register_noop(service, token) -> str:
    serializer = FuncXSerializer()
    return service.register_function(
        token, "noop", serializer.serialize_function(lambda x: x), public=True)


def submit_one(service, token, fid, ep) -> str:
    payload = FuncXSerializer().serialize(([1], {}))
    return service.submit(token, fid, ep, payload)


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------
class TestShardMap:
    def test_shard_count_validated(self):
        with pytest.raises(ValueError):
            ShardMap(0)

    def test_single_shard_fast_path(self):
        smap = ShardMap(1)
        assert smap.shard_for_endpoint("anything") == 0
        assert smap.shard_for_task("whatever") == 0

    def test_placement_is_stable_across_instances(self):
        a, b = ShardMap(4), ShardMap(4)
        for _ in range(64):
            key = str(uuid.uuid4())
            assert a.shard_for_endpoint(key) == b.shard_for_endpoint(key)

    def test_placement_covers_all_shards(self):
        smap = ShardMap(4)
        seen = {smap.shard_for_endpoint(f"endpoint-{i}") for i in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_tagged_task_id_routes_to_its_shard(self):
        smap = ShardMap(4)
        for index in range(4):
            tagged = smap.tag(str(uuid.uuid4()), index)
            assert smap.shard_for_task(tagged) == index

    def test_untagged_id_falls_back_to_ring_deterministically(self):
        a, b = ShardMap(4), ShardMap(4)
        raw = str(uuid.uuid4())
        assert a.shard_for_task(raw) == b.shard_for_task(raw)
        assert 0 <= a.shard_for_task(raw) < 4

    def test_out_of_range_tag_falls_back_to_ring(self):
        smap = ShardMap(2)
        # "-s9" looks like a tag but names a shard that does not exist.
        assert 0 <= smap.shard_for_task("abc-s9") < 2


# ----------------------------------------------------------------------
# _ShardPacer
# ----------------------------------------------------------------------
class TestShardPacer:
    def test_zero_cost_never_sleeps(self):
        sleeps: list[float] = []
        pacer = _ShardPacer(0.0, clock=lambda: 0.0, sleeper=sleeps.append)
        pacer.charge()
        pacer.charge(10)
        assert sleeps == []

    def test_serial_occupancy_accumulates(self):
        sleeps: list[float] = []
        pacer = _ShardPacer(0.5, clock=lambda: 0.0, sleeper=sleeps.append)
        pacer.charge()      # busy until 0.5
        pacer.charge()      # queues behind: busy until 1.0
        pacer.charge(2)     # two ops: busy until 2.0
        assert sleeps == [0.5, 1.0, 2.0]


# ----------------------------------------------------------------------
# facade routing + per-shard accounting
# ----------------------------------------------------------------------
class TestShardedFacade:
    def test_task_id_carries_owning_shard(self):
        service = make_service(4)
        token = user_token(service)
        fid = register_noop(service, token)
        for index in (0, 3):
            ep = endpoint_on(service, index)
            task_id = submit_one(service, token, fid, ep)
            assert task_id.endswith(f"-s{index}")
            assert service.shard_map.shard_for_task(task_id) == index

    def test_counters_close_on_complete_and_forget(self):
        service = make_service(2)
        token = user_token(service)
        fid = register_noop(service, token)
        ep = endpoint_on(service, 1)
        shard = service.shards[1]

        done = submit_one(service, token, fid, ep)
        open_ = submit_one(service, token, fid, ep)
        assert shard.open_tasks() == 2
        assert shard.outstanding(ep) == 2

        service.complete_task(done, success=True, result_buffer=b"r")
        assert shard.open_tasks() == 1
        assert shard.outstanding(ep) == 1

        assert service.forget_task(open_)
        counters = shard.counters()
        assert counters["received"] == 2
        assert counters["terminated"] == 1
        assert counters["forgotten_open"] == 1
        # the conservation identity the chaos invariant checks
        assert counters["open"] == (counters["received"]
                                    - counters["terminated"]
                                    - counters["forgotten_open"]) == 0
        # the untouched shard saw none of it
        assert service.shards[0].counters()["received"] == 0

    def test_status_batch_fans_out_across_shards(self):
        service = make_service(4)
        token = user_token(service)
        fid = register_noop(service, token)
        ids = []
        for index in range(4):
            ep = endpoint_on(service, index)
            ids.append(submit_one(service, token, fid, ep))
        service.complete_task(ids[2], success=True, result_buffer=b"r")
        states = service.status_batch(token, ids)
        assert set(states) == set(ids)
        assert states[ids[2]] == TaskState.SUCCESS.value
        assert states[ids[0]] == TaskState.QUEUED.value
        with pytest.raises(TaskNotFound):
            service.status_batch(token, ids + ["missing-task"])

    def test_draining_shard_rejects_submissions(self):
        service = make_service(2)
        token = user_token(service)
        fid = register_noop(service, token)
        ep = endpoint_on(service, 0)
        other = endpoint_on(service, 1)
        service.drain_shard(0)
        with pytest.raises(ShardDraining) as exc_info:
            submit_one(service, token, fid, ep)
        assert exc_info.value.shard_index == 0
        # the sibling shard still accepts
        submit_one(service, token, fid, other)
        service.restart_shard(0)
        submit_one(service, token, fid, ep)
        assert int(service.metrics.counter("shard.draining_rejects").value) == 1

    def test_batch_rejected_atomically_when_one_member_hits_drain(self):
        service = make_service(2)
        token = user_token(service)
        fid = register_noop(service, token)
        ep0, ep1 = endpoint_on(service, 0), endpoint_on(service, 1)
        payload = FuncXSerializer().serialize(([1], {}))
        service.drain_shard(1)
        before = service.tasks_received
        with pytest.raises(ShardDraining):
            service.submit_batch(token, [(fid, ep0, payload), (fid, ep1, payload)])
        assert service.tasks_received == before  # nothing partially admitted

    def test_kill_yanks_leases_and_restart_redelivers(self):
        service = make_service(2)
        token = user_token(service)
        fid = register_noop(service, token)
        ep = endpoint_on(service, 0)
        task_id = submit_one(service, token, fid, ep)
        queue = service.task_queue(ep)
        lease = queue.lease()
        assert lease is not None and lease.item == task_id

        yanked = service.shards[0].kill()
        assert yanked == 1
        assert not queue.ack(lease.lease_id)  # the old lease is dead
        service.restart_shard(0)
        redelivered = queue.lease()
        assert redelivered is not None and redelivered.item == task_id
        assert redelivered.deliveries == 2  # at-least-once redelivery
        assert queue.ack(redelivered.lease_id)

    def test_shard_counters_sum_to_facade_counters(self):
        service = make_service(4)
        token = user_token(service)
        fid = register_noop(service, token)
        eps = [endpoint_on(service, index) for index in range(4)]
        ids = [submit_one(service, token, fid, ep) for ep in eps for _ in range(3)]
        for task_id in ids[:5]:
            service.complete_task(task_id, success=True, result_buffer=b"r")
        totals = {key: sum(c[key] for c in service.shard_counters())
                  for key in ("received", "terminated", "open")}
        assert totals["received"] == service.tasks_received == 12
        assert totals["terminated"] == 5
        assert totals["open"] == len(service.iter_tasks()) - 5


# ----------------------------------------------------------------------
# satellite: the hot paths must be O(1), not table scans
# ----------------------------------------------------------------------
class TestConstantTimeAccounting:
    @staticmethod
    def _populate(service, token, fid, ep, count):
        payload = FuncXSerializer().serialize(([1], {}))
        for chunk_start in range(0, count, 256):
            chunk = min(256, count - chunk_start)
            service.submit_batch(token, [(fid, ep, payload)] * chunk)

    @staticmethod
    def _time_reads(fn, reps=4000) -> float:
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        return time.perf_counter() - start

    def test_outstanding_and_open_gauge_do_not_scale_with_open_tasks(self):
        gauge_reads = []
        outstanding_reads = []
        for count in (16, 4096):
            service = make_service(1, tracing=False)
            token = user_token(service)
            fid = register_noop(service, token)
            ep = any_endpoint(service)
            self._populate(service, token, fid, ep, count)
            gauge = service.metrics.gauge("service.tasks_live")
            gauge_reads.append(self._time_reads(lambda: gauge.value))
            outstanding_reads.append(
                self._time_reads(lambda: service.outstanding_tasks(ep)))
            service.close()
        # 256x the open tasks must not make the reads meaningfully
        # slower; a table scan would blow this bound by two orders of
        # magnitude, constant-time counters sit near 1x.
        assert gauge_reads[1] < 10 * gauge_reads[0], gauge_reads
        assert outstanding_reads[1] < 10 * outstanding_reads[0], outstanding_reads


# ----------------------------------------------------------------------
# live multi-shard deployment (stream router end to end)
# ----------------------------------------------------------------------
class TestLiveMultiShard:
    def test_executor_results_stream_across_shards(self):
        from repro.core.stream import ResultStreamRouter
        from repro.fabric import LocalDeployment

        with LocalDeployment(
            service_config=ServiceConfig(shards=4)
        ) as deployment:
            assert isinstance(deployment.service.result_stream,
                              ResultStreamRouter)
            client = deployment.client()
            ep = deployment.create_endpoint("sharded", nodes=1)
            fid = client.register_function(lambda x: x * 2)
            with client.executor(ep, batch_interval=0.0) as executor:
                futures = [executor.submit(fid, i) for i in range(12)]
                assert [f.result(timeout=30) for f in futures] == [
                    i * 2 for i in range(12)]
