"""Behaviour tests for the figure-6 elasticity simulation."""

from __future__ import annotations

import pytest

from repro.providers import KubernetesProvider, SimpleScalingStrategy
from repro.sim import ElasticitySimulation
from repro.workloads.generators import burst_arrivals


def paper_workload(bursts=3):
    """1x1s, 5x10s, 20x20s every 120 s (§5.3)."""
    return list(
        burst_arrivals(
            120.0, bursts, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)]
        )
    )


def make_sim(**kwargs):
    provider = KubernetesProvider(
        max_pods_per_image=kwargs.pop("max_pods", 10),
        startup_mean=2.0,
        startup_jitter=0.1,
        seed=11,
    )
    strategy = SimpleScalingStrategy(
        max_units_per_image=provider.max_pods_per_image,
        min_units_per_image=0,
        idle_grace=kwargs.pop("idle_grace", 5.0),
    )
    return ElasticitySimulation(provider=provider, strategy=strategy, **kwargs)


class TestFigure6Behaviour:
    def test_all_functions_complete(self):
        sim = make_sim()
        sim.submit(paper_workload())
        timelines = sim.run(until=420.0)
        assert timelines.completed == 3 * 26

    def test_pod_counts_track_demand(self):
        sim = make_sim()
        sim.submit(paper_workload())
        timelines = sim.run(until=420.0)
        # "funcX provisioned one, five, and ten (ten is the maximum) pods"
        assert timelines.peak_pods("1s") == 1
        assert timelines.peak_pods("10s") == 5
        assert timelines.peak_pods("20s") == 10

    def test_pods_reclaimed_when_idle(self):
        sim = make_sim()
        sim.submit(paper_workload(bursts=1))
        timelines = sim.run(until=200.0)
        times, pods = timelines.active_pods.series("20s")
        # pods scale out, then back to zero well before the horizon
        assert pods.max() == 10
        assert pods[-1] == 0

    def test_each_burst_rescales(self):
        sim = make_sim()
        sim.submit(paper_workload(bursts=3))
        timelines = sim.run(until=420.0)
        grid = [float(t) for t in range(0, 420, 2)]
        pods = timelines.active_pods.step_resample("20s", grid)
        # pods rise after each burst arrival (t=0,120,240)
        for burst_start in (0, 120, 240):
            idx = grid.index(float(burst_start))
            window = pods[idx : idx + 15]
            assert window.max() >= 9

    def test_outstanding_drains_between_bursts(self):
        sim = make_sim()
        sim.submit(paper_workload(bursts=2))
        timelines = sim.run(until=300.0)
        grid = [110.0, 115.0]
        outstanding = timelines.outstanding.step_resample("20s", grid)
        assert (outstanding == 0).all()


class TestConfigurationVariants:
    def test_lower_pod_cap_slows_completion(self):
        def finish_time(max_pods):
            sim = make_sim(max_pods=max_pods)
            sim.submit(paper_workload(bursts=1))
            tl = sim.run(until=500.0)
            times, values = tl.outstanding.series("20s")
            drained = times[values == 0]
            return float(drained[0]) if drained.size else 500.0

        assert finish_time(2) > finish_time(10)

    def test_zero_grace_reclaims_faster(self):
        sim_fast = make_sim(idle_grace=0.0)
        sim_fast.submit(paper_workload(bursts=1))
        tl = sim_fast.run(until=120.0)
        _, pods = tl.active_pods.series("1s")
        assert pods[-1] == 0

    def test_empty_workload(self):
        sim = make_sim()
        sim.submit([])
        tl = sim.run(until=10.0)
        assert tl.completed == 0
