"""Unit and behaviour tests for the simulated funcX fabric."""

from __future__ import annotations

import pytest

from repro.sim import FailureSchedule, SimFabric
from repro.sim.platform import CORI, EC2, THETA
from repro.workloads.generators import uniform_rate_arrivals


class TestBasicExecution:
    def test_all_tasks_complete(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=8)
        fab.submit_batch(100, duration=0.01)
        report = fab.run()
        assert report.tasks_completed == 100
        assert report.completion_time > 0

    def test_latency_includes_duration(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=4)
        fab.submit_batch(4, duration=1.0)
        report = fab.run()
        assert (report.latencies >= 1.0).all()

    def test_sequential_when_one_worker(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=1)
        fab.submit_batch(5, duration=1.0)
        report = fab.run()
        assert report.completion_time >= 5.0

    def test_parallelism_speeds_up(self):
        def completion(workers):
            fab = SimFabric(THETA, managers=1, workers_per_manager=workers)
            fab.submit_batch(64, duration=1.0)
            return fab.run().completion_time

        assert completion(64) < completion(8) < completion(1)

    def test_agent_throughput_ceiling_respected(self):
        fab = SimFabric(THETA, managers=64, prefetch=64)
        fab.submit_batch(20_000, duration=0.0)
        report = fab.run()
        # Cannot beat the dispatch pipeline: 20k × 0.59 ms ≈ 11.8 s
        assert report.completion_time >= 20_000 * THETA.agent_dispatch_overhead * 0.95
        assert report.throughput <= THETA.agent_throughput_ceiling * 1.05

    def test_report_shapes(self):
        fab = SimFabric(EC2, managers=1, workers_per_manager=4)
        fab.submit_batch(10)
        report = fab.run()
        assert report.latencies.shape == (10,)
        assert report.completion_times.shape == (10,)
        assert report.events_processed > 0

    def test_stream_submission(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=4, prefetch=4)
        tasks = fab.submit_stream(uniform_rate_arrivals(rate=100, total=50, duration=0.01))
        report = fab.run()
        assert report.tasks_completed == 50
        assert tasks[0].created == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimFabric(THETA, managers=0)
        fab = SimFabric(THETA, managers=1)
        with pytest.raises(ValueError):
            fab.submit_batch(3, memo_keys=[1])


class TestBatchingKnobs:
    def test_internal_batching_dramatically_faster(self):
        def completion(batching):
            fab = SimFabric(THETA, managers=4, internal_batching=batching)
            fab.submit_batch(2_000, duration=0.0)
            return fab.run().completion_time

        enabled, disabled = completion(True), completion(False)
        assert disabled > 5 * enabled  # the §5.5.2 gap (17x in the paper)

    def test_prefetch_reduces_completion(self):
        def completion(prefetch):
            fab = SimFabric(THETA, managers=4, prefetch=prefetch)
            fab.submit_batch(5_000, duration=0.01)
            return fab.run().completion_time

        times = [completion(p) for p in (0, 16, 64)]
        assert times[0] > times[1] >= times[2]

    def test_prefetch_diminishing_returns(self):
        def completion(prefetch):
            fab = SimFabric(THETA, managers=4, prefetch=prefetch)
            fab.submit_batch(5_000, duration=0.01)
            return fab.run().completion_time

        t64, t512 = completion(64), completion(512)
        assert t512 == pytest.approx(t64, rel=0.25)  # flat beyond 64/node


class TestMemoization:
    def _run(self, repeat_pct, n=2_000):
        n_rep = n * repeat_pct // 100
        keys = list(range(n - n_rep)) + [0] * n_rep
        fab = SimFabric(THETA, managers=4, memoize=True, prefetch=64)
        fab.submit_batch(n, duration=1.0, memo_keys=keys, through_service=True)
        return fab.run()

    def test_more_repeats_faster(self):
        t0 = self._run(0).completion_time
        t50 = self._run(50).completion_time
        t100 = self._run(100).completion_time
        assert t0 > t50 > t100

    def test_hit_counting(self):
        report = self._run(50)
        assert report.memo_hits == 1000
        assert report.tasks_completed == 2000

    def test_memo_disabled_ignores_keys(self):
        fab = SimFabric(THETA, managers=4, memoize=False)
        fab.submit_batch(100, duration=0.01, memo_keys=[0] * 100, through_service=True)
        report = fab.run()
        assert report.memo_hits == 0

    def test_unwarmed_cache_requires_first_completion(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=1,
                        memoize=True, memo_prewarmed=False)
        # Both tasks arrive back-to-back: second cannot hit (first still running).
        fab.submit_batch(2, duration=1.0, memo_keys=[7, 7], through_service=True)
        report = fab.run()
        assert report.memo_hits == 0

    def test_unwarmed_cache_hits_after_completion(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=1,
                        memoize=True, memo_prewarmed=False)
        fab.submit_batch(1, duration=0.5, memo_keys=[7], through_service=True)
        fab.submit_batch(1, duration=0.5, at=10.0, memo_keys=[7], through_service=True)
        report = fab.run()
        assert report.memo_hits == 1


class TestFailures:
    def test_manager_failure_no_task_loss(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.2)
        fab.submit_stream(uniform_rate_arrivals(rate=60, total=600, duration=0.1))
        fab.apply_failures(FailureSchedule(manager_failures=((2.0, 4.0, 0),)))
        report = fab.run()
        assert report.tasks_completed == 600
        assert report.reexecutions > 0

    def test_manager_failure_latency_spike(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.2)
        fab.submit_stream(uniform_rate_arrivals(rate=60, total=600, duration=0.1))
        fab.apply_failures(FailureSchedule(manager_failures=((2.0, 4.0, 0),)))
        report = fab.run()
        t, lat = report.latency_timeline(bin_width=0.5)
        before = lat[t < 2.0].mean()
        during = lat[(t > 2.0) & (t < 6.0)].max()
        after = lat[t > 8.0].mean()
        assert during > 3 * before          # visible spike
        assert after == pytest.approx(before, rel=0.2)  # full recovery

    def test_endpoint_failure_recovers_all_tasks(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.5)
        fab.submit_stream(uniform_rate_arrivals(rate=20, total=1000, duration=0.1))
        fab.apply_failures(FailureSchedule(endpoint_failures=((10.0, 25.0),)))
        report = fab.run()
        assert report.tasks_completed == 1000

    def test_endpoint_failure_latency_spike_after_recovery(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.5)
        fab.submit_stream(uniform_rate_arrivals(rate=20, total=1000, duration=0.1))
        fab.apply_failures(FailureSchedule(endpoint_failures=((10.0, 25.0),)))
        report = fab.run()
        t, lat = report.latency_timeline(bin_width=2.0)
        spike = lat[(t >= 25.0) & (t <= 32.0)].max()
        baseline = lat[t < 10.0].mean()
        assert spike > 10 * baseline

    def test_failure_schedule_validation(self):
        fab = SimFabric(THETA, managers=1)
        with pytest.raises(IndexError):
            fab.apply_failures(FailureSchedule(manager_failures=((1.0, 2.0, 5),)))
        with pytest.raises(ValueError):
            fab.apply_failures(FailureSchedule(manager_failures=((2.0, 1.0, 0),)))
        with pytest.raises(ValueError):
            fab.apply_failures(FailureSchedule(endpoint_failures=((2.0, 1.0),)))


class TestPlatformModels:
    def test_platform_throughputs_match_paper(self):
        assert THETA.agent_throughput_ceiling == pytest.approx(1694, rel=0.01)
        assert CORI.agent_throughput_ceiling == pytest.approx(1466, rel=0.01)

    def test_nodes_for(self):
        assert THETA.nodes_for(64) == 1
        assert THETA.nodes_for(65) == 2
        assert CORI.nodes_for(131_072) == 512

    def test_container_counts(self):
        assert THETA.containers_per_node == 64
        assert CORI.containers_per_node == 256

    def test_cold_starts_match_table2(self):
        assert THETA.container_cold_start == pytest.approx(10.40)
        assert CORI.container_cold_start == pytest.approx(8.49)

    def test_container_cold_start_applied_once_per_manager(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=2)
        fab.submit_batch(4, duration=0.01, container_key="singularity:img")
        report = fab.run()
        assert report.completion_time >= THETA.container_cold_start
        assert report.completion_time < 3 * THETA.container_cold_start


class TestAdvertiseIdleKnob:
    """The §5.5.5 advertisement mode: request exactly `prefetch` per cycle."""

    def _completion(self, prefetch):
        fab = SimFabric(THETA, managers=4, workers_per_manager=64,
                        prefetch=prefetch, advertise_idle=False, seed=1)
        fab.submit_batch(2_000, duration=0.01)
        return fab.run().completion_time

    def test_small_prefetch_starves_workers(self):
        assert self._completion(1) > 20 * self._completion(64)

    def test_monotone_in_prefetch(self):
        times = [self._completion(p) for p in (1, 4, 16, 64)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_saturates_at_worker_count(self):
        t64, t512 = self._completion(64), self._completion(512)
        assert abs(t64 - t512) / t512 < 0.3

    def test_zero_prefetch_clamped_to_one(self):
        # prefetch=0 in this mode still makes progress (credit >= 1)
        fab = SimFabric(THETA, managers=1, workers_per_manager=4,
                        prefetch=0, advertise_idle=False)
        fab.submit_batch(10, duration=0.0)
        assert fab.run().tasks_completed == 10


class TestRecoveryRaces:
    """Regression: overlapping recovery paths must not double-dispatch or
    leak worker slots (found by the conservation property test)."""

    def test_inflight_dispatch_plus_endpoint_failure(self):
        # endpoint fails while dispatches are in flight AND outstanding:
        # both the drop-path watchdog and the forwarder sweep see the same
        # tasks; each must be re-executed exactly once.
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.25, seed=1)
        fab.submit_batch(56, duration=0.2)
        fab.apply_failures(FailureSchedule(endpoint_failures=((1.125, 1.625),)))
        report = fab.run()
        assert report.tasks_completed == 56
        # every manager slot is free at the end (no zombie running tasks)
        for manager in fab.managers:
            assert len(manager.running) == 0
            assert len(manager.queue) == 0
            assert manager.idle == manager.workers

    def test_overlapping_manager_and_endpoint_failures(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.25, seed=2)
        fab.submit_batch(120, duration=0.1)
        fab.apply_failures(FailureSchedule(
            manager_failures=((1.0, 3.0, 0),),
            endpoint_failures=((1.5, 2.5),),
        ))
        report = fab.run()
        assert report.tasks_completed == 120

    def test_duplicate_results_counted_once(self):
        fab = SimFabric(THETA, managers=2, workers_per_manager=4, prefetch=4,
                        heartbeat_period=0.25, seed=3)
        fab.submit_batch(80, duration=0.2)
        fab.apply_failures(FailureSchedule(endpoint_failures=((0.5, 1.0),)))
        report = fab.run()
        assert report.tasks_completed == 80
        assert len({t.task_id for t in fab.completed}) == 80


class TestResultDelivery:
    """The DES mirror of the push vs poll result paths."""

    @staticmethod
    def _run(mode, **kwargs):
        fab = SimFabric(THETA, managers=1, workers_per_manager=4,
                        result_delivery=mode, result_latency=0.001,
                        poll_interval=0.01, **kwargs)
        fab.submit_batch(100, duration=0.01)
        return fab.run()

    def test_default_models_no_delivery(self):
        fab = SimFabric(THETA, managers=1, workers_per_manager=4)
        fab.submit_batch(10, duration=0.01)
        report = fab.run()
        # Published figures replay unchanged: no delivery leg by default.
        assert report.delivery_latencies is None
        assert report.results_delivered == 0
        assert all(t.delivered < 0 for t in fab.completed)

    def test_push_adds_exactly_the_link_latency(self):
        report = self._run("push")
        assert report.results_delivered == 100
        extra = report.delivery_latencies - report.latencies
        assert extra == pytest.approx(0.001)

    def test_poll_quantizes_to_the_next_tick(self):
        report = self._run("poll")
        assert report.results_delivered == 100
        # Deliveries land at or after the result is visible at the
        # client, within one full tick of it.
        extra = report.delivery_latencies - report.latencies
        assert (extra >= 0.001 - 1e-9).all()
        assert extra.max() <= 0.001 + 0.01 + 1e-9  # link + one full tick

    def test_push_beats_poll(self):
        push = self._run("push")
        poll = self._run("poll")
        import numpy as np
        assert (np.median(push.delivery_latencies)
                < np.median(poll.delivery_latencies))
        # Poll pays about half a tick extra on average.
        assert (poll.delivery_latencies.mean() - push.delivery_latencies.mean()
                > 0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimFabric(THETA, managers=1, result_delivery="websocket")
        with pytest.raises(ValueError):
            SimFabric(THETA, managers=1, result_delivery="poll",
                      poll_interval=0.0)
