"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import ClockMonotonicityViolation
from repro.sim.kernel import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3.0, order.append, "c")
        loop.schedule(1.0, order.append, "a")
        loop.schedule(2.0, order.append, "b")
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_fifo_ties(self):
        loop = EventLoop()
        order = []
        for name in "abc":
            loop.schedule(1.0, order.append, name)
        loop.run()
        assert order == ["a", "b", "c"]

    def test_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.at(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ClockMonotonicityViolation):
            loop.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        loop = EventLoop()
        seen = []

        def chain(n):
            seen.append(loop.now)
            if n > 0:
                loop.schedule(1.0, chain, n - 1)

        loop.schedule(0.0, chain, 3)
        loop.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_step(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, seen.append, 1)
        assert loop.step()
        assert not loop.step()
        assert seen == [1]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        event = loop.schedule(1.0, seen.append, "never")
        loop.schedule(2.0, seen.append, "yes")
        event.cancel()
        loop.run()
        assert seen == ["yes"]

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        event.cancel()
        assert loop.pending == 1


class TestBoundedRuns:
    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, seen.append, "early")
        loop.schedule(10.0, seen.append, "late")
        loop.run(until=5.0)
        assert seen == ["early"]
        assert loop.now == 5.0  # clock advanced to the horizon
        loop.run()
        assert seen == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self):
        loop = EventLoop()
        loop.run(until=42.0)
        assert loop.now == 42.0

    def test_max_events(self):
        loop = EventLoop()
        seen = []
        for i in range(10):
            loop.schedule(float(i), seen.append, i)
        assert loop.run(max_events=3) == 3
        assert seen == [0, 1, 2]

    def test_events_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), lambda: None)
        loop.run()
        assert loop.events_processed == 5

    def test_next_event_time(self):
        loop = EventLoop()
        assert loop.next_event_time() is None
        loop.schedule(4.0, lambda: None)
        assert loop.next_event_time() == 4.0

    def test_clock_callable(self):
        loop = EventLoop()
        snapshot = []
        loop.schedule(2.5, lambda: snapshot.append(loop.clock()))
        loop.run()
        assert snapshot == [2.5]
