"""Unit tests for the platform models' calibration contract."""

from __future__ import annotations

import pytest

from repro.sim.platform import CORI, EC2, K8S, PLATFORMS, THETA, SimPlatform


class TestCalibration:
    def test_registry_complete(self):
        assert set(PLATFORMS) == {"theta", "cori", "ec2", "k8s"}
        assert PLATFORMS["theta"] is THETA

    def test_theta_matches_paper(self):
        assert THETA.containers_per_node == 64          # §5.2 Singularity/node
        assert THETA.agent_throughput_ceiling == pytest.approx(1694)
        assert THETA.container_cold_start == pytest.approx(10.40)  # Table 2

    def test_cori_matches_paper(self):
        assert CORI.containers_per_node == 256          # 4 hw threads/core
        assert CORI.agent_throughput_ceiling == pytest.approx(1466)
        assert CORI.container_cold_start == pytest.approx(8.49)

    def test_ec2_is_the_fig9_machine(self):
        assert EC2.containers_per_node == 36            # c5n.9xlarge vCPUs
        assert EC2.agent_dispatch_overhead < THETA.agent_dispatch_overhead

    def test_k8s_single_worker_pods(self):
        assert K8S.containers_per_node == 1             # §4.5 pod model

    def test_knl_workers_slower_than_cloud(self):
        assert THETA.worker_overhead > EC2.worker_overhead
        assert CORI.worker_overhead >= THETA.worker_overhead

    def test_wan_latency_default(self):
        # the §5.1 measurement: 18.2 ms to the service
        assert THETA.wan_latency == pytest.approx(0.0182)


class TestDerivedQuantities:
    def test_nodes_for_exact(self):
        assert THETA.nodes_for(1) == 1
        assert THETA.nodes_for(64) == 1
        assert THETA.nodes_for(65) == 2
        assert THETA.nodes_for(131_072) == 2048
        assert CORI.nodes_for(131_072) == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            SimPlatform(name="bad", containers_per_node=0,
                        agent_dispatch_overhead=0.001)
        with pytest.raises(ValueError):
            SimPlatform(name="bad", containers_per_node=1,
                        agent_dispatch_overhead=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            THETA.containers_per_node = 128  # type: ignore[misc]
