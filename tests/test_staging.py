"""Unit tests for out-of-band data staging (Globus substitute)."""

from __future__ import annotations

import pytest

from repro.errors import NotFoundError
from repro.staging import DataRef, DataStore, TransferService


class TestDataStore:
    def test_put_get_roundtrip(self):
        store = DataStore("alcf")
        ref = store.put(b"image bytes")
        assert store.get(ref) == b"image bytes"
        assert ref.size == 11

    def test_named_key(self):
        store = DataStore("s")
        ref = store.put(b"x", key="dataset/frame-001.h5")
        assert ref.key == "dataset/frame-001.h5"
        assert store.exists(ref.key)

    def test_missing_object(self):
        store = DataStore("s")
        bogus = DataRef(store="s", key="missing", size=1, checksum=0)
        with pytest.raises(NotFoundError):
            store.get(bogus)

    def test_wrong_store(self):
        a, b = DataStore("a"), DataStore("b")
        ref = a.put(b"data")
        with pytest.raises(NotFoundError):
            b.get(ref)

    def test_checksum_detects_corruption(self):
        store = DataStore("s")
        ref = store.put(b"data", key="k")
        store._objects["k"] = b"tampered"
        with pytest.raises(ValueError, match="checksum"):
            store.get(ref)

    def test_delete(self):
        store = DataStore("s")
        ref = store.put(b"x", key="k")
        assert store.delete("k")
        assert not store.delete("k")
        assert len(store) == 0

    def test_ref_argument_roundtrip(self):
        ref = DataStore("s").put(b"payload")
        record = ref.as_argument()
        assert record["__dataref__"]
        assert DataRef.from_argument(record) == ref

    def test_from_argument_rejects_plain_dict(self):
        with pytest.raises(ValueError):
            DataRef.from_argument({"store": "s"})


class TestTransferService:
    def _service(self, **kwargs):
        svc = TransferService(**kwargs)
        svc.create_store("beamline")
        svc.create_store("hpc")
        return svc

    def test_transfer_copies_object(self):
        svc = self._service()
        ref = svc.store("beamline").put(b"detector frame")
        new_ref = svc.transfer(ref, "hpc")
        assert new_ref.store == "hpc"
        assert svc.store("hpc").get(new_ref) == b"detector frame"
        # source still intact
        assert svc.store("beamline").get(ref) == b"detector frame"

    def test_estimate_uses_link_model(self):
        svc = self._service(default_latency=1.0, default_bandwidth=100.0)
        assert svc.estimate("beamline", "hpc", 200) == pytest.approx(3.0)

    def test_custom_link_overrides_default(self):
        svc = self._service(default_latency=1.0, default_bandwidth=1.0)
        svc.set_link("beamline", "hpc", latency=0.0, bandwidth=1e9)
        assert svc.estimate("beamline", "hpc", 10**6) < 0.01

    def test_records_audit_trail(self):
        svc = self._service()
        ref = svc.store("beamline").put(b"12345")
        svc.transfer(ref, "hpc")
        assert len(svc.records) == 1
        record = svc.records[0]
        assert record.source == "beamline" and record.destination == "hpc"
        assert record.size == 5
        assert svc.total_bytes_moved() == 5

    def test_unknown_store(self):
        svc = self._service()
        ref = svc.store("beamline").put(b"x")
        with pytest.raises(NotFoundError):
            svc.transfer(ref, "nowhere")

    def test_applied_delay(self):
        slept = []
        svc = TransferService(
            default_latency=0.25,
            default_bandwidth=1e9,
            apply_delay=True,
            sleeper=slept.append,
        )
        svc.create_store("a")
        svc.create_store("b")
        ref = svc.store("a").put(b"x" * 1000)
        svc.transfer(ref, "b")
        assert len(slept) == 1 and slept[0] >= 0.25

    def test_link_validation(self):
        svc = self._service()
        with pytest.raises(ValueError):
            svc.set_link("a", "b", latency=-1, bandwidth=10)
        with pytest.raises(ValueError):
            svc.set_link("a", "b", latency=0, bandwidth=0)


class TestStoreRegistry:
    def setup_method(self):
        from repro.staging.transfer import clear_registry

        clear_registry()

    def test_register_and_resolve(self):
        from repro.staging import register_store, resolve_store

        store = register_store(DataStore("beamline"))
        assert resolve_store("beamline") is store

    def test_resolve_unknown(self):
        from repro.staging import resolve_store

        with pytest.raises(NotFoundError):
            resolve_store("nowhere")

    def test_fetch_ref_roundtrip(self):
        from repro.staging import fetch_ref, register_store

        store = register_store(DataStore("site"))
        ref = store.put(b"detector frame bytes")
        assert fetch_ref(ref.as_argument()) == b"detector frame bytes"

    def test_function_fetches_staged_data_through_live_fabric(self):
        """The §4.6 pattern end to end: stage data, pass only the
        reference through the service, the function reads it at the site."""
        from repro import LocalDeployment
        from repro.staging import register_store

        store = register_store(DataStore("edge"))
        ref = store.put(b"0123456789" * 100)

        def count_bytes(data_ref):
            from repro.staging.transfer import fetch_ref

            return len(fetch_ref(data_ref))

        with LocalDeployment() as dep:
            client = dep.client()
            ep = dep.create_endpoint("edge-ep", nodes=1)
            fid = client.register_function(count_bytes)
            future = client.submit(fid, ep, ref.as_argument())
            assert future.result(timeout=30) == 1000
        # the reference that crossed the service is tiny
        import json

        assert len(json.dumps(ref.as_argument())) < 300
