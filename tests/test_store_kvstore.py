"""Unit tests for the KV store (Redis substitute)."""

from __future__ import annotations

from repro.store import KVStore


class TestPlainKeys:
    def test_set_get(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", "v")
        assert kv.get("k") == "v"

    def test_get_default(self, clock):
        kv = KVStore(clock=clock)
        assert kv.get("missing") is None
        assert kv.get("missing", 7) == 7

    def test_delete(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", 1)
        assert kv.delete("k")
        assert not kv.delete("k")
        assert not kv.exists("k")

    def test_overwrite(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", 1)
        kv.set("k", 2)
        assert kv.get("k") == 2

    def test_incr(self, clock):
        kv = KVStore(clock=clock)
        assert kv.incr("counter") == 1
        assert kv.incr("counter", 5) == 6
        assert kv.get("counter") == 6

    def test_keys_prefix(self, clock):
        kv = KVStore(clock=clock)
        kv.set("task:1", "a")
        kv.set("task:2", "b")
        kv.set("result:1", "c")
        assert kv.keys("task:") == ["task:1", "task:2"]


class TestHashsets:
    def test_hset_hget(self, clock):
        kv = KVStore(clock=clock)
        kv.hset("tasks", "t1", {"state": "queued"})
        assert kv.hget("tasks", "t1") == {"state": "queued"}
        assert kv.hget("tasks", "t2") is None

    def test_hgetall(self, clock):
        kv = KVStore(clock=clock)
        kv.hset("h", "a", 1)
        kv.hset("h", "b", 2)
        assert kv.hgetall("h") == {"a": 1, "b": 2}

    def test_hdel(self, clock):
        kv = KVStore(clock=clock)
        kv.hset("h", "a", 1)
        assert kv.hdel("h", "a")
        assert not kv.hdel("h", "a")
        assert kv.hlen("h") == 0

    def test_hgetall_returns_copy(self, clock):
        kv = KVStore(clock=clock)
        kv.hset("h", "a", 1)
        snapshot = kv.hgetall("h")
        snapshot["b"] = 2
        assert kv.hlen("h") == 1


class TestTTL:
    def test_expiry_on_read(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", "v", ttl=10.0)
        clock.advance(9.0)
        assert kv.get("k") == "v"
        clock.advance(2.0)
        assert kv.get("k") is None

    def test_expire_existing_key(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", "v")
        kv.expire("k", 5.0)
        assert kv.ttl("k") == 5.0
        clock.advance(6.0)
        assert not kv.exists("k")

    def test_purge_expired(self, clock):
        kv = KVStore(clock=clock)
        kv.set("a", 1, ttl=1.0)
        kv.set("b", 2, ttl=100.0)
        kv.set("c", 3)
        clock.advance(2.0)
        assert kv.purge_expired() == 1
        assert kv.keys() == ["b", "c"]

    def test_set_clears_old_ttl(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", 1, ttl=1.0)
        kv.set("k", 2)  # no TTL
        clock.advance(10.0)
        assert kv.get("k") == 2

    def test_ttl_none_without_expiry(self, clock):
        kv = KVStore(clock=clock)
        kv.set("k", 1)
        assert kv.ttl("k") is None


class TestIntrospection:
    def test_len_counts_both_kinds(self, clock):
        kv = KVStore(clock=clock)
        kv.set("a", 1)
        kv.hset("h", "f", 1)
        assert len(kv) == 2

    def test_iter(self, clock):
        kv = KVStore(clock=clock)
        kv.set("a", 1)
        kv.set("b", 2)
        assert sorted(kv) == ["a", "b"]

    def test_memory_footprint_counts_bytes(self, clock):
        kv = KVStore(clock=clock)
        kv.set("a", b"12345")
        kv.hset("h", "f", "abc")
        assert kv.memory_footprint() >= 8
