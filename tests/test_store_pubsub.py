"""Unit tests for the pub/sub fan-out."""

from __future__ import annotations

from repro.store import PubSub


class TestExactTopics:
    def test_publish_to_subscriber(self):
        ps = PubSub()
        seen = []
        ps.subscribe("task.1", lambda t, m: seen.append((t, m)))
        assert ps.publish("task.1", "done") == 1
        assert seen == [("task.1", "done")]

    def test_no_cross_topic_delivery(self):
        ps = PubSub()
        seen = []
        ps.subscribe("task.1", lambda t, m: seen.append(m))
        ps.publish("task.2", "x")
        assert seen == []

    def test_multiple_subscribers(self):
        ps = PubSub()
        seen = []
        ps.subscribe("t", lambda _t, m: seen.append("a"))
        ps.subscribe("t", lambda _t, m: seen.append("b"))
        assert ps.publish("t", None) == 2
        assert sorted(seen) == ["a", "b"]

    def test_publish_without_subscribers(self):
        assert PubSub().publish("nobody", 1) == 0


class TestPrefixTopics:
    def test_prefix_matches(self):
        ps = PubSub()
        seen = []
        ps.subscribe_prefix("endpoint.", lambda t, m: seen.append(t))
        ps.publish("endpoint.abc.queued", 1)
        ps.publish("task.1", 1)
        assert seen == ["endpoint.abc.queued"]

    def test_empty_prefix_matches_everything(self):
        ps = PubSub()
        seen = []
        ps.subscribe_prefix("", lambda t, m: seen.append(t))
        ps.publish("anything", 1)
        assert seen == ["anything"]

    def test_subscriber_count_includes_prefix(self):
        ps = PubSub()
        ps.subscribe("a.b", lambda t, m: None)
        ps.subscribe_prefix("a.", lambda t, m: None)
        assert ps.subscriber_count("a.b") == 2


class TestUnsubscribeAndErrors:
    def test_unsubscribe(self):
        ps = PubSub()
        seen = []
        token = ps.subscribe("t", lambda _t, m: seen.append(m))
        assert ps.unsubscribe(token)
        ps.publish("t", 1)
        assert seen == []

    def test_unsubscribe_unknown_token(self):
        assert not PubSub().unsubscribe(12345)

    def test_unsubscribe_prefix(self):
        ps = PubSub()
        token = ps.subscribe_prefix("x.", lambda t, m: None)
        assert ps.unsubscribe(token)
        assert ps.subscriber_count("x.y") == 0

    def test_bad_subscriber_is_isolated(self):
        ps = PubSub()
        seen = []

        def bad(_t, _m):
            raise RuntimeError("monitor crashed")

        ps.subscribe("t", bad)
        ps.subscribe("t", lambda _t, m: seen.append(m))
        delivered = ps.publish("t", "msg")
        assert delivered == 1          # good subscriber still served
        assert seen == ["msg"]
        assert len(ps.delivery_errors) == 1
