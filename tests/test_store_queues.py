"""Unit tests for the reliable (at-least-once) queue."""

from __future__ import annotations

import threading

from repro.store import ReliableQueue


class TestBasicFifo:
    def test_put_lease_ack(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        lease = q.lease()
        assert lease is not None and lease.item == "a"
        assert q.ack(lease.lease_id)
        assert len(q) == 0 and q.in_flight == 0

    def test_fifo_order(self, clock):
        q = ReliableQueue(clock=clock)
        for item in "abc":
            q.put(item)
        assert [q.lease().item for _ in range(3)] == ["a", "b", "c"]

    def test_empty_poll_returns_none(self, clock):
        q = ReliableQueue(clock=clock)
        assert q.lease(timeout=0.0) is None

    def test_put_many(self, clock):
        q = ReliableQueue(clock=clock)
        assert q.put_many(range(5)) == 5
        assert len(q) == 5

    def test_lease_many_bulk(self, clock):
        q = ReliableQueue(clock=clock)
        q.put_many(range(10))
        leases = q.lease_many(4)
        assert [l.item for l in leases] == [0, 1, 2, 3]
        assert q.in_flight == 4
        assert len(q) == 6

    def test_lease_many_drains_at_most_available(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("only")
        assert len(q.lease_many(100)) == 1

    def test_counters(self, clock):
        q = ReliableQueue(clock=clock)
        q.put_many(range(3))
        leases = q.lease_many(3)
        q.ack(leases[0].lease_id)
        q.nack(leases[1].lease_id)
        assert q.total_enqueued == 3
        assert q.total_acked == 1


class TestRedelivery:
    def test_nack_returns_to_front(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        q.put("b")
        lease = q.lease()
        assert lease.item == "a"
        q.nack(lease.lease_id)
        assert q.lease().item == "a"  # redelivered before b

    def test_nack_increments_delivery_count(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        lease = q.lease()
        q.nack(lease.lease_id)
        lease2 = q.lease()
        assert lease2.deliveries == 2
        assert q.total_redelivered == 1

    def test_double_ack_is_false(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        lease = q.lease()
        assert q.ack(lease.lease_id)
        assert not q.ack(lease.lease_id)
        assert not q.nack(lease.lease_id)

    def test_nack_all_preserves_age_order(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("old")
        clock.advance(1.0)
        q.put("new")
        l1 = q.lease()
        l2 = q.lease()
        assert (l1.item, l2.item) == ("old", "new")
        assert q.nack_all() == 2
        assert q.lease().item == "old"
        assert q.lease().item == "new"

    def test_lease_timeout_requeues(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=5.0)
        q.put("a")
        q.lease()
        clock.advance(6.0)
        assert q.requeue_expired() == 1
        assert q.lease().item == "a"

    def test_unexpired_lease_not_requeued(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=5.0)
        q.put("a")
        q.lease()
        clock.advance(4.0)
        assert q.requeue_expired() == 0

    def test_per_lease_timeout_override(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        q.lease(lease_timeout=1.0)
        clock.advance(2.0)
        assert q.requeue_expired() == 1


class TestBlockingAndLifecycle:
    def test_blocking_lease_wakes_on_put(self):
        q = ReliableQueue()
        result = []

        def consumer():
            lease = q.lease(timeout=5.0)
            result.append(lease.item if lease else None)

        t = threading.Thread(target=consumer)
        t.start()
        q.put("wake")
        t.join(timeout=5.0)
        assert result == ["wake"]

    def test_close_unblocks_waiters(self):
        q = ReliableQueue()
        result = []

        def consumer():
            result.append(q.lease(timeout=10.0))

        t = threading.Thread(target=consumer)
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert result == [None]

    def test_put_after_close_raises(self):
        q = ReliableQueue()
        q.close()
        import pytest

        with pytest.raises(RuntimeError):
            q.put("x")

    def test_peek_ages(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("a")
        clock.advance(3.0)
        q.put("b")
        ages = q.peek_ages()
        assert ages == [3.0, 0.0]


class TestLeaseExpirySemantics:
    """Pin the *lazy* expiry contract around ack timing.

    A deadline passing does not by itself revoke a lease: revocation
    happens only when ``requeue_expired()`` scans.  Consumers that finish
    late but before a scan may therefore still ack successfully — and the
    conservation law must hold exactly through every such interleaving.
    """

    def test_ack_after_deadline_before_scan_succeeds(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=1.0)
        q.put("t")
        lease = q.lease()
        clock.advance(5.0)  # deadline long past, but nobody scanned
        assert q.ack(lease.lease_id) is True
        assert q.total_acked == 1
        assert q.requeue_expired() == 0  # nothing left to revoke
        assert q.conservation_delta() == 0

    def test_ack_after_scan_is_rejected(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=1.0)
        q.put("t")
        lease = q.lease()
        clock.advance(1.0)
        assert q.requeue_expired() == 1  # scan revokes the lease
        assert q.ack(lease.lease_id) is False
        assert q.total_acked == 0
        # The item is redelivered under a fresh lease with a bumped count.
        redelivery = q.lease()
        assert redelivery.item == "t"
        assert redelivery.deliveries == 2
        assert redelivery.lease_id != lease.lease_id
        assert q.total_redelivered == 1
        assert q.conservation_delta() == 0

    def test_late_ack_does_not_touch_redelivered_item(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=1.0)
        q.put("t")
        stale = q.lease()
        clock.advance(2.0)
        q.requeue_expired()
        fresh = q.lease()
        # The stale consumer wakes up and acks its dead lease: rejected,
        # and the fresh lease must be unaffected.
        assert q.ack(stale.lease_id) is False
        assert q.in_flight == 1
        assert q.ack(fresh.lease_id) is True
        assert q.total_acked == 1
        assert q.conservation_delta() == 0

    def test_double_ack_counts_once(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("t")
        lease = q.lease()
        assert q.ack(lease.lease_id) is True
        assert q.ack(lease.lease_id) is False
        assert q.nack(lease.lease_id) is False  # nack after ack also dead
        assert q.total_acked == 1
        assert q.conservation_delta() == 0

    def test_nack_then_ack_is_rejected(self, clock):
        q = ReliableQueue(clock=clock)
        q.put("t")
        lease = q.lease()
        assert q.nack(lease.lease_id) is True
        assert q.ack(lease.lease_id) is False  # lease died with the nack
        assert q.total_acked == 0
        assert len(q) == 1
        assert q.conservation_delta() == 0

    def test_conservation_holds_through_expiry_churn(self, clock):
        q = ReliableQueue(clock=clock, default_lease_timeout=0.5)
        q.put_many(range(6))
        for _round in range(4):
            leases = q.lease_many(3)
            q.ack(leases[0].lease_id)  # one completes
            clock.advance(1.0)  # rest expire
            q.requeue_expired()
            assert q.conservation_delta() == 0
        assert q.total_acked == 4
        assert q.total_acked + len(q) + q.in_flight == q.total_enqueued
