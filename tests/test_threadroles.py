"""Thread-role inference units: role graph, lock attribution, waivers,
the live-fabric spawn map, and the src-clean tier-1 gate.

The fixture corpus in test_analysis.py covers the finding-level
contract (EXPECT markers); these tests pin the *intermediate* artifacts
— which roles the graph assigns to which functions, which locks an
access is attributed, and that every ``threading.Thread`` spawn in the
live fabric resolves to a named role.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.analysis.runner import iter_python_files, run_analysis
from repro.analysis.source import load_source, module_name_for, parse_source
from repro.analysis.threadroles import (
    ROLES,
    UNKNOWN_ROLE,
    build_role_report,
    canonical_role,
    check_thread_roles,
    make_thread_roles_check,
    role_for_thread,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _parse(text: str, path: str = "inline.py"):
    return parse_source(text, path=path, module="repro.core.inline")


def _src_sources():
    sources = []
    for p in iter_python_files(REPO_ROOT / "src"):
        rel = str(p.relative_to(REPO_ROOT))
        sources.append(load_source(p, rel, module_name_for(rel)))
    return sources


# ----------------------------------------------------------------------
# role vocabulary
# ----------------------------------------------------------------------
class TestRoleNames:
    def test_canonical_role_aliases_and_prefixes(self):
        assert canonical_role("forwarder") == "forwarder-loop"
        assert canonical_role("forwarder-ep1") == "forwarder-loop"
        assert canonical_role("manager-m07") == "manager-loop"
        assert canonical_role("worker-3") == "worker"
        assert canonical_role("result-stream") == "stream-delivery"
        assert canonical_role("funcx-executor") == "executor-batcher"
        assert canonical_role("chaos-scheduler") == "chaos-scheduler"
        assert canonical_role("MainThread") == "main"

    def test_role_for_thread_collapses_unknown_onto_callback(self):
        assert role_for_thread("MainThread") == "main"
        assert role_for_thread("agent-ep1") == "agent-loop"
        assert role_for_thread("Thread-17") == "callback"
        assert role_for_thread("pytest-watcher") == "callback"

    def test_taxonomy_is_closed(self):
        assert len(ROLES) == 10
        assert UNKNOWN_ROLE not in ROLES


# ----------------------------------------------------------------------
# role graph units
# ----------------------------------------------------------------------
ENGINE = '''
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.jobs = 0  # guarded-by: self._lock

    def start(self):
        self._thread = threading.Thread(target=self._run, name="agent-x")
        self._thread.start()

    def _run(self):
        self._step()

    def _step(self):
        with self._lock:
            self.jobs += 1

    def poke(self):
        with self._lock:
            self.jobs += 1
'''


class TestRoleGraph:
    def test_spawn_role_propagates_through_calls(self):
        report = build_role_report([_parse(ENGINE)])
        assert "agent-loop" in report.roles_of("Engine", "_run")
        # _step is reached from _run, so the spawn role flows through.
        assert "agent-loop" in report.roles_of("Engine", "_step")
        # public entry points carry the main role
        assert "main" in report.roles_of("Engine", "start")
        assert "main" in report.roles_of("Engine", "poke")
        # private helpers are not main entries by themselves
        assert "main" not in report.roles_of("Engine", "_run")

    def test_accesses_carry_holding_locks(self):
        report = build_role_report([_parse(ENGINE)])
        accesses = report.accesses[("Engine", "jobs")]
        assert accesses, "expected recorded accesses for Engine.jobs"
        for access in accesses:
            assert any(lock.endswith("._lock") for lock in access.locks), (
                access,)

    def test_shared_attrs_requires_two_roles(self):
        report = build_role_report([_parse(ENGINE)])
        assert "Engine.jobs" in report.shared_attrs()
        # _thread is only ever touched from main -> not shared
        assert "Engine._thread" not in report.shared_attrs()

    def test_must_hold_locks_flow_into_callees(self):
        text = '''
import threading


class Inner:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = None
        self.count = 0  # guarded-by: self._lock

    def start(self):
        self._thread = threading.Thread(target=self._loop, name="worker-0")
        self._thread.start()

    def _loop(self):
        with self._lock:
            self._bump()

    def bump_locked(self):
        with self._lock:
            self._bump()

    def _bump(self):
        self.count += 1
'''
        report = build_role_report([_parse(text)])
        accesses = report.accesses[("Inner", "count")]
        # the write inside _bump inherits the lock every call site holds
        assert all(a.locks for a in accesses if a.kind == "write")
        # and the finding-level result is clean: common lock exists
        findings = list(check_thread_roles([_parse(text)]))
        assert [f for f in findings if f.severity == "error"] == []

    def test_unresolvable_spawn_is_an_error(self):
        text = '''
import threading


def kickoff(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    return thread
'''
        findings = list(check_thread_roles([_parse(text)]))
        assert len(findings) == 1
        assert "no resolvable role" in findings[0].message


# ----------------------------------------------------------------------
# parameterized spawn sites (one thread per shard)
# ----------------------------------------------------------------------
SHARDED = '''
import threading


class Shard:
    def __init__(self, index):
        self._lock = threading.Lock()
        self.index = index
        self.handled = 0  # guarded-by: self._lock

    def run(self):
        with self._lock:
            self.handled += 1

    def poke(self):
        with self._lock:
            self.handled += 1


class Plane:
    def __init__(self, count):
        self.shards: list[Shard] = [Shard(i) for i in range(count)]

    def start(self):
        for shard in self.shards:
            threading.Thread(target=shard.run,
                             name=f"worker-{shard.index}").start()

    def poke_all(self):
        for shard in self.shards:
            shard.poke()
'''


class TestParameterizedSpawns:
    """The sharded-plane shape: a loop over a typed container spawning
    one thread per element, named by an f-string."""

    def test_loop_spawn_over_typed_container_resolves(self):
        report = build_role_report([_parse(SHARDED)])
        spawn = next(s for s in report.spawns if s.symbol == "Plane.start")
        # loop variable typed from the list[Shard] annotation, target
        # resolved through it, role from the f-string's literal stem
        assert spawn.target == ("Shard", "run")
        assert spawn.role == "worker"
        assert "worker" in report.roles_of("Shard", "run")

    def test_guarded_shard_state_stays_clean(self):
        findings = list(check_thread_roles([_parse(SHARDED)]))
        assert [f for f in findings if f.severity == "error"] == []


# ----------------------------------------------------------------------
# --roles subset filter
# ----------------------------------------------------------------------
class TestRoleFilter:
    def test_subset_filter_drops_unrelated_findings(self):
        bad = (REPO_ROOT / "tests/analysis_fixtures/threadrole_bad.py"
               ).read_text(encoding="utf-8")
        source = _parse(bad, path="threadrole_bad.py")
        full = [f for f in check_thread_roles([source])
                if f.severity == "error"]
        assert len(full) == 2
        worker_only = make_thread_roles_check(["worker"])
        filtered = [f for f in worker_only([source])
                    if f.severity == "error"]
        # only the worker-vs-main race survives; the callback race drops
        assert len(filtered) == 1
        assert "worker" in filtered[0].message
        elasticity_only = make_thread_roles_check(["elasticity"])
        assert [f for f in elasticity_only([source])
                if f.severity == "error"] == []


# ----------------------------------------------------------------------
# the live fabric: every spawn resolves, src is clean
# ----------------------------------------------------------------------
EXPECTED_SPAWNS = {
    ("src/repro/chaos/scheduler.py", "chaos-scheduler"),
    ("src/repro/core/executor.py", "executor-batcher"),
    ("src/repro/core/forwarder.py", "forwarder-loop"),
    ("src/repro/core/stream.py", "stream-delivery"),
    ("src/repro/endpoint/agent.py", "agent-loop"),
    ("src/repro/endpoint/elasticity.py", "elasticity"),
    ("src/repro/endpoint/manager.py", "manager-loop"),
    ("src/repro/endpoint/worker.py", "worker"),
}


class TestLiveFabric:
    def test_every_thread_spawn_resolves_to_a_named_role(self):
        report = build_role_report(_src_sources())
        spawned = {(spawn.path, spawn.role) for spawn in report.spawns}
        assert EXPECTED_SPAWNS <= spawned, EXPECTED_SPAWNS - spawned
        unknown = [s for s in report.spawns if s.role == UNKNOWN_ROLE]
        assert unknown == [], unknown

    def test_src_tree_is_clean(self):
        """Tier-1 gate: the audited fabric has no unwaived cross-role
        races and no unwaived stale annotations."""
        report = run_analysis([REPO_ROOT / "src"], repo_root=REPO_ROOT)
        assert report.errors == []
        assert report.findings == [], [f.format() for f in report.findings]
        assert report.infos == [], [f.format() for f in report.infos]


# ----------------------------------------------------------------------
# regression: the AuthClient token race the pass found
# ----------------------------------------------------------------------
class TestAuthClientRegression:
    def test_concurrent_refresh_is_single_flight(self):
        """Racing bearer_token() callers used to double-spend the
        single-use refresh token (AuthenticationFailed: unknown refresh
        token); the refresh lock serializes the swap."""
        from repro.auth.service import AuthClient, AuthService

        now = [0.0]
        service = AuthService(token_lifetime=100.0, clock=lambda: now[0])
        identity = service.register_identity("ada", provider="institution")
        client = AuthClient(service, identity)

        workers, rounds = 8, 20
        errors = []
        start = threading.Barrier(workers + 1)
        done = threading.Barrier(workers + 1)

        def hammer():
            try:
                for _ in range(rounds):
                    start.wait(timeout=10)
                    token = client.bearer_token()
                    assert service.introspect(token).identity == identity
                    done.wait(timeout=10)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer, name=f"hammer-{i}")
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        # Each round steps the frozen clock into the refresh window
        # (remaining 5 < lifetime * 0.1), then releases all workers at
        # once: exactly one may spend the single-use refresh token.
        for _ in range(rounds):
            now[0] += 95.0
            start.wait(timeout=10)
            done.wait(timeout=10)
        for thread in threads:
            thread.join(timeout=30)
        assert errors == [], errors
