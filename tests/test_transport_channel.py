"""Unit tests for channels: ordering, latency, failures."""

from __future__ import annotations

import pytest

from repro.errors import ChannelClosed, Disconnected
from repro.transport import Channel, Network


class TestBasicMessaging:
    def test_bidirectional_send_recv(self, clock):
        ch = Channel(clock=clock)
        ch.left.send("ping")
        ch.right.send("pong")
        assert ch.right.recv() == "ping"
        assert ch.left.recv() == "pong"

    def test_ordering_preserved(self, clock):
        ch = Channel(clock=clock)
        for i in range(10):
            ch.left.send(i)
        assert ch.right.recv_all_ready() == list(range(10))

    def test_poll_empty_returns_none(self, clock):
        ch = Channel(clock=clock)
        assert ch.right.recv(timeout=0.0) is None

    def test_counters(self, clock):
        ch = Channel(clock=clock)
        ch.left.send("a")
        ch.right.recv()
        assert ch.left.sent_count == 1
        assert ch.right.received_count == 1

    def test_pending(self, clock):
        ch = Channel(clock=clock)
        ch.left.send("a")
        ch.left.send("b")
        assert ch.right.pending() == 2


class TestLatency:
    def test_message_not_ripe_before_latency(self, clock):
        ch = Channel(clock=clock, latency=0.5)
        ch.left.send("late")
        assert ch.right.recv(timeout=0.0) is None
        clock.advance(0.4)
        assert ch.right.recv(timeout=0.0) is None
        clock.advance(0.2)
        assert ch.right.recv(timeout=0.0) == "late"

    def test_callable_latency(self, clock):
        values = iter([1.0, 0.1])
        ch = Channel(clock=clock, latency=lambda: next(values))
        ch.left.send("slow")
        ch.left.send("fast")
        clock.advance(0.2)
        # The fast message ripens first even though sent second.
        assert ch.right.recv_all_ready() == ["fast"]
        clock.advance(1.0)
        assert ch.right.recv_all_ready() == ["slow"]

    def test_real_blocking_recv_waits_out_latency(self):
        ch = Channel(latency=0.05)
        ch.left.send("x")
        assert ch.right.recv(timeout=2.0) == "x"

    def test_negative_latency_clamped(self, clock):
        ch = Channel(clock=clock, latency=lambda: -5.0)
        ch.left.send("now")
        assert ch.right.recv(timeout=0.0) == "now"


class TestFailures:
    def test_send_from_disconnected_end_raises(self, clock):
        ch = Channel(clock=clock)
        ch.left.disconnect()
        with pytest.raises(Disconnected):
            ch.left.send("x")

    def test_send_to_disconnected_peer_drops(self, clock):
        ch = Channel(clock=clock)
        ch.right.disconnect()
        assert ch.left.send("lost") is False
        assert ch.dropped_count == 1

    def test_disconnect_drops_inbox(self, clock):
        ch = Channel(clock=clock)
        ch.left.send("inflight")
        ch.right.disconnect()
        ch.right.reconnect()
        assert ch.right.recv(timeout=0.0) is None

    def test_disconnect_keep_inbox(self, clock):
        ch = Channel(clock=clock)
        ch.left.send("kept")
        ch.right.disconnect(drop_inbox=False)
        ch.right.reconnect()
        assert ch.right.recv(timeout=0.0) == "kept"

    def test_reconnect_restores_flow(self, clock):
        ch = Channel(clock=clock)
        ch.right.disconnect()
        ch.right.reconnect()
        assert ch.left.send("hello")
        assert ch.right.recv(timeout=0.0) == "hello"

    def test_deterministic_drops(self, clock):
        ch = Channel(clock=clock, drop_probability=0.5, seed=42)
        sent = [ch.left.send(i) for i in range(100)]
        received = ch.right.recv_all_ready()
        assert len(received) == sum(sent)
        assert 20 < len(received) < 80  # statistically sane
        assert ch.dropped_count == 100 - len(received)

    def test_closed_end_raises(self, clock):
        ch = Channel(clock=clock)
        ch.left.close()
        with pytest.raises(ChannelClosed):
            ch.left.send("x")
        with pytest.raises(ChannelClosed):
            ch.left.recv()

    def test_reconnect_after_close_raises(self, clock):
        ch = Channel(clock=clock)
        ch.left.close()
        with pytest.raises(ChannelClosed):
            ch.left.reconnect()

    def test_invalid_drop_probability(self):
        with pytest.raises(ValueError):
            Channel(drop_probability=1.5)


class TestNetwork:
    def test_creates_channels_with_default_latency(self, clock):
        net = Network(clock=clock, default_latency=1.0)
        ch = net.create_channel("a")
        ch.left.send("x")
        assert ch.right.recv(timeout=0.0) is None
        clock.advance(1.1)
        assert ch.right.recv(timeout=0.0) == "x"

    def test_per_channel_latency_override(self, clock):
        net = Network(clock=clock, default_latency=1.0)
        ch = net.create_channel("fast", latency=0.0)
        ch.left.send("x")
        assert ch.right.recv(timeout=0.0) == "x"

    def test_close_all(self, clock):
        net = Network(clock=clock)
        ch = net.create_channel("a")
        net.close_all()
        with pytest.raises(ChannelClosed):
            ch.left.send("x")

    def test_total_dropped(self, clock):
        net = Network(clock=clock)
        ch = net.create_channel("a")
        ch.right.disconnect()
        ch.left.send("lost")
        assert net.total_dropped() == 1
