"""Unit tests for heartbeat liveness tracking.

Every test runs against the injectable ``clock`` fixture — no test in
this module touches the wall clock, so there is nothing timing-sensitive
to flake.  (``HeartbeatTracker`` only falls back to ``time.monotonic``
when no clock is given; the two constructor-validation tests below pass
the fake clock too, pinning that nothing forces the wall-clock path.)
"""

from __future__ import annotations

import pytest

from repro.transport import HeartbeatTracker


class TestLiveness:
    def test_alive_after_beat(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=3, clock=clock)
        hb.beat("mgr1")
        assert hb.is_alive("mgr1")

    def test_untracked_is_not_alive(self, clock):
        hb = HeartbeatTracker(clock=clock)
        assert not hb.is_alive("ghost")

    def test_lost_after_grace(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=3, clock=clock)
        hb.beat("mgr1")
        clock.advance(3.0)
        assert hb.is_alive("mgr1")  # exactly at deadline still alive
        clock.advance(0.1)
        assert not hb.is_alive("mgr1")
        assert hb.lost_components() == ["mgr1"]

    def test_beat_refreshes(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=2, clock=clock)
        hb.beat("m")
        clock.advance(1.5)
        hb.beat("m")
        clock.advance(1.5)
        assert hb.is_alive("m")

    def test_multiple_components(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        hb.beat("a")
        clock.advance(0.9)
        hb.beat("b")
        clock.advance(0.5)
        assert hb.lost_components() == ["a"]
        assert hb.alive_components() == ["b"]

    def test_explicit_timestamp(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        clock.advance(10.0)
        hb.beat("m", timestamp=9.5)
        assert hb.is_alive("m")

    def test_out_of_order_beats_keep_latest(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        clock.advance(5.0)
        hb.beat("m", timestamp=5.0)
        hb.beat("m", timestamp=3.0)  # late-arriving old beat
        assert hb.last_seen("m") == 5.0


class TestBookkeeping:
    def test_forget(self, clock):
        hb = HeartbeatTracker(clock=clock)
        hb.beat("m")
        assert hb.forget("m")
        assert not hb.forget("m")
        assert hb.tracked() == []

    def test_beat_count(self, clock):
        hb = HeartbeatTracker(clock=clock)
        for _ in range(4):
            hb.beat("m")
        assert hb.beat_count("m") == 4
        assert hb.beat_count("other") == 0

    def test_deadline(self, clock):
        hb = HeartbeatTracker(period=0.5, grace_periods=4, clock=clock)
        assert hb.deadline == 2.0

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            HeartbeatTracker(period=0, clock=clock)
        with pytest.raises(ValueError):
            HeartbeatTracker(grace_periods=0, clock=clock)


class TestClockSkew:
    """Semantics under skewed sender clocks (the chaos ``skew_heartbeats``
    fault relies on these staying monotone)."""

    def test_future_timestamp_extends_liveness(self, clock):
        # A fast sender clock stamps beats ahead of the receiver: liveness
        # is extended (last_seen is the max), never reset backwards.
        hb = HeartbeatTracker(period=1.0, grace_periods=2, clock=clock)
        hb.beat("m", timestamp=4.0)  # 4s ahead of receiver time 0
        assert hb.last_seen("m") == 4.0
        clock.advance(5.5)  # receiver reaches 5.5; silence = 1.5 < 2.0
        assert hb.is_alive("m")
        clock.advance(1.0)  # silence = 2.5 > deadline
        assert not hb.is_alive("m")

    def test_stale_timestamp_never_regresses_last_seen(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        clock.advance(10.0)
        hb.beat("m")  # arrival-stamped at 10.0
        hb.beat("m", timestamp=2.0)  # slow sender clock, long-delayed beat
        assert hb.last_seen("m") == 10.0
        assert hb.is_alive("m")

    def test_silenced_sender_crosses_deadline_exactly_once(self, clock):
        # A sender whose period is skewed far beyond the deadline (the
        # chaos fault) is declared lost after exactly period x grace of
        # receiver-side silence and stays lost until it beats again.
        hb = HeartbeatTracker(period=0.05, grace_periods=6, clock=clock)
        hb.beat("agent")
        clock.advance(hb.deadline)
        assert hb.is_alive("agent")  # boundary inclusive
        clock.advance(0.001)
        assert hb.lost_components() == ["agent"]
        clock.advance(100.0)
        assert hb.lost_components() == ["agent"]  # still just lost, once
        hb.beat("agent")
        assert hb.is_alive("agent")
