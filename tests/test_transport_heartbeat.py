"""Unit tests for heartbeat liveness tracking."""

from __future__ import annotations

import pytest

from repro.transport import HeartbeatTracker


class TestLiveness:
    def test_alive_after_beat(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=3, clock=clock)
        hb.beat("mgr1")
        assert hb.is_alive("mgr1")

    def test_untracked_is_not_alive(self, clock):
        hb = HeartbeatTracker(clock=clock)
        assert not hb.is_alive("ghost")

    def test_lost_after_grace(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=3, clock=clock)
        hb.beat("mgr1")
        clock.advance(3.0)
        assert hb.is_alive("mgr1")  # exactly at deadline still alive
        clock.advance(0.1)
        assert not hb.is_alive("mgr1")
        assert hb.lost_components() == ["mgr1"]

    def test_beat_refreshes(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=2, clock=clock)
        hb.beat("m")
        clock.advance(1.5)
        hb.beat("m")
        clock.advance(1.5)
        assert hb.is_alive("m")

    def test_multiple_components(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        hb.beat("a")
        clock.advance(0.9)
        hb.beat("b")
        clock.advance(0.5)
        assert hb.lost_components() == ["a"]
        assert hb.alive_components() == ["b"]

    def test_explicit_timestamp(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        clock.advance(10.0)
        hb.beat("m", timestamp=9.5)
        assert hb.is_alive("m")

    def test_out_of_order_beats_keep_latest(self, clock):
        hb = HeartbeatTracker(period=1.0, grace_periods=1, clock=clock)
        clock.advance(5.0)
        hb.beat("m", timestamp=5.0)
        hb.beat("m", timestamp=3.0)  # late-arriving old beat
        assert hb.last_seen("m") == 5.0


class TestBookkeeping:
    def test_forget(self, clock):
        hb = HeartbeatTracker(clock=clock)
        hb.beat("m")
        assert hb.forget("m")
        assert not hb.forget("m")
        assert hb.tracked() == []

    def test_beat_count(self, clock):
        hb = HeartbeatTracker(clock=clock)
        for _ in range(4):
            hb.beat("m")
        assert hb.beat_count("m") == 4
        assert hb.beat_count("other") == 0

    def test_deadline(self):
        hb = HeartbeatTracker(period=0.5, grace_periods=4)
        assert hb.deadline == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatTracker(period=0)
        with pytest.raises(ValueError):
            HeartbeatTracker(grace_periods=0)
