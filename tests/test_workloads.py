"""Unit tests for the workload models (case studies, functions, arrivals)."""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.workloads import (
    CASE_STUDIES,
    burst_arrivals,
    case_study,
    double_after_sleep,
    echo,
    make_sleep_function,
    noop,
    poisson_arrivals,
    simulated_case_function,
    stress,
    uniform_rate_arrivals,
)
from repro.workloads.functions import (
    busy_10us,
    correlate_frames,
    extract_tabular_metadata,
    extract_text_metadata,
    histogram_events,
    infer_digit,
)
from repro.workloads.generators import concurrent_batch


class TestCaseStudies:
    def test_all_six_present(self):
        assert set(CASE_STUDIES) == {
            "metadata", "ml_inference", "ssx", "neuro", "hep", "xpcs",
        }

    def test_samples_within_quoted_ranges(self):
        rng = random.Random(0)
        for study in CASE_STUDIES.values():
            for _ in range(200):
                value = study.sample(rng)
                assert study.low <= value <= study.high

    def test_xpcs_is_longest(self):
        rng = np.random.default_rng(0)
        medians = {
            name: float(np.median(study.sample_many(500, seed=1)))
            for name, study in CASE_STUDIES.items()
        }
        assert max(medians, key=medians.get) == "xpcs"
        assert medians["xpcs"] == pytest.approx(50.0, rel=0.15)

    def test_ml_inference_is_fastest(self):
        medians = {
            name: float(np.median(study.sample_many(500, seed=1)))
            for name, study in CASE_STUDIES.items()
        }
        assert min(medians, key=medians.get) == "ml_inference"

    def test_sample_many_matches_figure1_protocol(self):
        samples = case_study("ssx").sample_many(100, seed=3)
        assert samples.shape == (100,)
        assert (samples >= 1.0).all() and (samples <= 2.5).all()

    def test_unknown_case_study(self):
        with pytest.raises(KeyError, match="unknown case study"):
            case_study("astrology")

    def test_validation(self):
        from repro.workloads.casestudies import CaseStudy

        with pytest.raises(ValueError):
            CaseStudy("bad", "", median=5.0, sigma=1.0, low=10.0, high=20.0)


class TestSyntheticFunctions:
    def test_noop(self):
        assert noop() is None

    def test_echo(self):
        assert echo() == "hello-world"
        assert echo("hi") == "hi"

    def test_sleep_function_duration(self):
        sleeper = make_sleep_function(0.05)
        start = time.perf_counter()
        assert sleeper() == 0.05
        assert time.perf_counter() - start >= 0.05

    def test_sleep_function_rejects_negative(self):
        with pytest.raises(ValueError):
            make_sleep_function(-1)

    def test_stress_busy_loops(self):
        iterations = stress(0.02)
        assert iterations > 1000

    def test_double_after_sleep(self):
        start = time.perf_counter()
        assert double_after_sleep(21) == 42
        assert time.perf_counter() - start >= 1.0

    def test_busy_10us(self):
        assert busy_10us() == sum(i * i for i in range(120))

    def test_simulated_case_function_runs(self):
        func = simulated_case_function("ml_inference", scale=0.01)
        out = func(sample_id=3)
        assert out["case"] == "ml_inference"
        assert out["duration"] > 0


class TestScienceFunctions:
    def test_text_metadata(self):
        out = extract_text_metadata("the cat and the hat and the bat")
        assert out["n_words"] == 8
        assert out["top_words"][0] == ("the", 3)

    def test_tabular_metadata(self):
        out = extract_tabular_metadata([[1.0, 2.0], [3.0, 4.0]])
        assert out["column_means"] == [2.0, 3.0]
        assert out["n_rows"] == 2

    def test_tabular_rejects_ragged(self):
        with pytest.raises(ValueError):
            extract_tabular_metadata([[1.0], [1.0, 2.0]])

    def test_tabular_empty(self):
        assert extract_tabular_metadata([])["n_rows"] == 0

    def test_infer_digit_deterministic(self):
        pixels = [((i * 5) % 17) / 16.0 for i in range(64)]
        out1 = infer_digit(pixels)
        out2 = infer_digit(pixels)
        assert out1 == out2
        assert out1["digit"] == 2  # centroid pattern for digit 2 uses factor 5

    def test_infer_digit_shape_check(self):
        with pytest.raises(ValueError):
            infer_digit([0.0] * 10)

    def test_correlate_frames(self):
        frames = [[1.0, 2.0], [1.0, 2.0], [1.0, 2.0]]
        g2 = correlate_frames(frames, max_lag=2)
        assert len(g2) == 2
        assert g2[0] == pytest.approx(1.0, rel=0.3)

    def test_correlate_validation(self):
        with pytest.raises(ValueError):
            correlate_frames([])
        with pytest.raises(ValueError):
            correlate_frames([[1.0], [1.0, 2.0]])

    def test_histogram_events(self):
        counts = histogram_events([5.0, 15.0, 15.5, 100.0], n_bins=10)
        assert counts[0] == 1 and counts[1] == 2 and counts[9] == 1
        assert sum(counts) == 4

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            histogram_events([], n_bins=0)
        with pytest.raises(ValueError):
            histogram_events([], lo=10, hi=5)


class TestArrivalGenerators:
    def test_uniform_rate_spacing(self):
        events = list(uniform_rate_arrivals(rate=10, total=5))
        times = [e.time for e in events]
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_uniform_rate_lazy(self):
        gen = uniform_rate_arrivals(rate=1, total=10**9)
        assert next(gen).index == 0  # no materialization

    def test_poisson_mean_rate(self):
        events = list(poisson_arrivals(rate=100, total=2000, seed=1))
        span = events[-1].time - events[0].time
        rate = len(events) / span
        assert rate == pytest.approx(100, rel=0.15)

    def test_poisson_monotone(self):
        events = list(poisson_arrivals(rate=5, total=100, seed=2))
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_burst_composition(self):
        events = list(
            burst_arrivals(120.0, 3, [("1s", 1, 1.0), ("10s", 5, 10.0), ("20s", 20, 20.0)])
        )
        assert len(events) == 3 * 26
        first_burst = [e for e in events if e.time == 0.0]
        assert sum(1 for e in first_burst if e.workload == "20s") == 20
        assert {e.time for e in events} == {0.0, 120.0, 240.0}

    def test_burst_indexes_unique(self):
        events = list(burst_arrivals(1.0, 2, [("a", 3, 0.0)]))
        assert [e.index for e in events] == list(range(6))

    def test_concurrent_batch(self):
        events = list(concurrent_batch(10, duration=1.0))
        assert all(e.time == 0.0 for e in events)
        assert len(events) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            list(uniform_rate_arrivals(rate=0, total=1))
        with pytest.raises(ValueError):
            list(burst_arrivals(0.0, 1, [("a", 1, 0.0)]))
        with pytest.raises(ValueError):
            list(burst_arrivals(1.0, 1, [("a", -1, 0.0)]))
